"""Shared experiment plumbing: settings, series containers, table printing."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import (
    AnalysisConfig,
    CACConfig,
    NetworkConfig,
    SimulationConfig,
)
from repro.scenario.spec import AnalysisKnobs, ArrivalsSpec, ScenarioSpec

#: Offered-load calibration used by default (see SimulationConfig.load_scale
#: and EXPERIMENTS.md): one scalar fitted so that AP(U=0.3, beta=0.5) lands
#: near the paper's level, then held fixed for every experiment point.
CALIBRATED_LOAD_SCALE = 0.15


@dataclasses.dataclass(frozen=True)
class ExperimentSettings:
    """Run-size and calibration knobs shared by all experiments."""

    n_requests: int = 300
    warmup_requests: int = 30
    seeds: Tuple[int, ...] = (1, 2, 3)
    calibrate_load: bool = True
    network: NetworkConfig = dataclasses.field(default_factory=NetworkConfig)
    #: Optional accuracy-for-speed trade (``--coarsen`` on the CLI): cap
    #: every analysis curve at this many segments via one-sided coarsening
    #: (see AnalysisConfig.coarsen_segments).  ``None`` — the default — is
    #: exact mode, whose figure CSVs are bit-reproducible; a finite cap
    #: makes admission strictly more conservative but much faster at high
    #: load.
    coarsen_segments: Optional[int] = None

    def simulation_config(self) -> SimulationConfig:
        scale = CALIBRATED_LOAD_SCALE if self.calibrate_load else 1.0
        return SimulationConfig(load_scale=scale)

    def cac_config(self, beta: float) -> Optional[CACConfig]:
        """The CAC override for one sweep point (None in exact mode).

        Returning ``None`` lets the simulator build its default
        ``CACConfig(beta=beta)``, keeping exact-mode runs on the untouched
        (bit-reproducible) code path.
        """
        if self.coarsen_segments is None:
            return None
        return CACConfig(
            beta=beta,
            analysis=AnalysisConfig(coarsen_segments=self.coarsen_segments),
        )

    def scenario(
        self,
        utilization: float,
        beta: float,
        seed: int,
        name: Optional[str] = None,
    ) -> ScenarioSpec:
        """The :class:`ScenarioSpec` of one sweep point ``(U, beta, seed)``.

        Every experiment builds its grid through this producer and runs it
        via :func:`repro.scenario.loader.connection_sim_config`, which maps
        a default-knob spec to the exact ``ConnectionSimConfig`` the
        pre-spec code built by hand — figure CSVs stay byte-identical.
        """
        scale = CALIBRATED_LOAD_SCALE if self.calibrate_load else 1.0
        return ScenarioSpec(
            name=name or f"U{utilization:g}-beta{beta:g}-seed{seed}",
            topology=self.network,
            cac=AnalysisKnobs(
                beta=beta, coarsen_segments=self.coarsen_segments
            ),
            arrivals=ArrivalsSpec(
                utilization=utilization,
                seed=seed,
                n_requests=self.n_requests,
                warmup_requests=self.warmup_requests,
                load_scale=scale,
            ),
        )

    @staticmethod
    def quick() -> "ExperimentSettings":
        """A fast-but-noisy configuration for smoke runs and benches."""
        return ExperimentSettings(n_requests=100, warmup_requests=10, seeds=(1,))


@dataclasses.dataclass
class SeriesResult:
    """One plotted series: a label and (x, y) points with per-point spread."""

    label: str
    xs: List[float] = dataclasses.field(default_factory=list)
    ys: List[float] = dataclasses.field(default_factory=list)
    spreads: List[float] = dataclasses.field(default_factory=list)

    def add(self, x: float, y: float, spread: float = 0.0) -> None:
        self.xs.append(x)
        self.ys.append(y)
        self.spreads.append(spread)


def mean_and_spread(values: Sequence[float]) -> Tuple[float, float]:
    """Mean and half-range across seeds."""
    if not values:
        return float("nan"), 0.0
    m = sum(values) / len(values)
    return m, (max(values) - min(values)) / 2.0


def format_table(
    x_label: str, series: Sequence[SeriesResult], x_format: str = "{:.2f}"
) -> str:
    """Render series as an aligned text table (one row per x value)."""
    xs = sorted({x for s in series for x in s.xs})
    header = [x_label] + [s.label for s in series]
    rows: List[List[str]] = [header]
    lookup: Dict[Tuple[str, float], Tuple[float, float]] = {}
    for s in series:
        for x, y, sp in zip(s.xs, s.ys, s.spreads):
            lookup[(s.label, x)] = (y, sp)
    for x in xs:
        row = [x_format.format(x)]
        for s in series:
            if (s.label, x) in lookup:
                y, sp = lookup[(s.label, x)]
                row.append(f"{y:.3f}" + (f" ±{sp:.3f}" if sp > 0 else ""))
            else:
                row.append("-")
        rows.append(row)
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[j]) for j, cell in enumerate(row)))
        if i == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)
