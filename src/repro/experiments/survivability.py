"""Survivability experiment: admission and recovery under stochastic faults.

The paper's evaluation (Figures 7/8) measures admission probability on a
healthy network; its reference [4] (Chen-Kamat-Zhao, RTSS'95) asks the
operational follow-up: what survives when the backbone misbehaves?  This
experiment sweeps the backbone utilization ``U`` at a *fixed* fault regime
(exponential link MTBF/MTTR) and reports, per load level:

* AP without faults (the paper's baseline);
* AP with faults injected (fresh requests arriving on a degraded topology);
* the connection survival rate (displaced connections that the
  retry-with-backoff machinery re-admitted before abandoning/expiring);
* mean time-to-recover and mean retries per successful reconnection.

Every run ends with the no-leak / no-violation audit; a FAIL anywhere is
surfaced in the report (and would be a bug in the CAC's transactional
release/re-admit path).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.errors import AuditError
from repro.experiments.common import (
    ExperimentSettings,
    SeriesResult,
    format_table,
    mean_and_spread,
)
from repro.experiments.parallel import SimTask, run_sims
from repro.faults.injector import FaultConfig
from repro.faults.retry import RetryPolicy
from repro.scenario.loader import connection_sim_config
from repro.scenario.spec import FaultPlan

#: Load sweep (same axis as Figure 8).
UTILIZATIONS = (0.1, 0.3, 0.5, 0.7, 0.9)
#: The paper's recommended interior allocation point.
BETA = 0.5
#: Fixed fault regime: each backbone link fails about every 2000 s and
#: stays down about 120 s (both exponential) — several outages per run at
#: the simulated holding times (1/mu = 600 s).
DEFAULT_FAULTS = FaultConfig(link_mtbf=2000.0, link_mttr=120.0)
#: Backoff: 5 s, 10 s, 20 s, 40 s, 60 s, ... capped, up to 8 attempts.
DEFAULT_RETRY = RetryPolicy(
    base_delay=5.0, factor=2.0, max_delay=60.0, max_attempts=8, jitter=0.1
)


def run_survivability(
    settings: Optional[ExperimentSettings] = None,
    utilizations: Sequence[float] = UTILIZATIONS,
    faults: FaultConfig = DEFAULT_FAULTS,
    retry: RetryPolicy = DEFAULT_RETRY,
    jobs: int = 1,
    strict_audit: bool = True,
) -> Tuple[List[SeriesResult], List[str]]:
    """Run the sweep; returns (series, audit failure descriptions).

    With ``strict_audit`` (the default) any run that ends with leaked
    synchronous bandwidth or a broken delay contract raises
    :class:`~repro.errors.AuditError` listing every failing cell — a leak
    is a bug in the CAC's transactional release/re-admit path, never an
    acceptable experimental outcome.  Pass ``strict_audit=False`` to get
    the failure list back for custom reporting instead.
    """
    settings = settings or ExperimentSettings()
    tasks = []
    for u in utilizations:
        for seed in settings.seeds:
            clean_spec = settings.scenario(u, BETA, seed)
            faulted_spec = dataclasses.replace(
                clean_spec,
                name=f"{clean_spec.name}-faults",
                faults=FaultPlan(config=faults, retry=retry),
            )
            tasks.append(SimTask(connection_sim_config(clean_spec)))
            tasks.append(SimTask(connection_sim_config(faulted_spec)))
    results = iter(run_sims(tasks, jobs=jobs))
    ap_clean = SeriesResult(label="AP no-faults")
    ap_faults = SeriesResult(label="AP faults")
    survival = SeriesResult(label="survival")
    ttr = SeriesResult(label="mean TTR (s)")
    retries = SeriesResult(label="retries/reconnect")
    audit_failures: List[str] = []
    for u in utilizations:
        aps_clean, aps_faulty, survs, ttrs, rtr = [], [], [], [], []
        for seed in settings.seeds:
            clean = next(results)
            aps_clean.append(clean.admission_probability)
            faulty = next(results)
            aps_faulty.append(faulty.admission_probability)
            sv = faulty.survivability
            if sv.n_resolved:
                survs.append(sv.survival_rate)
            if sv.time_to_recover.n:
                ttrs.append(sv.time_to_recover.mean)
                rtr.append(sv.retries_per_reconnect.mean)
            if not faulty.audit.ok:
                audit_failures.append(
                    f"U={u:g} seed={seed}: {faulty.audit.format()}"
                )
        ap_clean.add(u, *mean_and_spread(aps_clean))
        ap_faults.add(u, *mean_and_spread(aps_faulty))
        if survs:
            survival.add(u, *mean_and_spread(survs))
        if ttrs:
            ttr.add(u, *mean_and_spread(ttrs))
            retries.add(u, *mean_and_spread(rtr))
    if strict_audit and audit_failures:
        raise AuditError(
            "survivability run ended with leaked bandwidth or broken "
            "contracts in {} cell(s):\n{}".format(
                len(audit_failures),
                "\n".join(f"  {line}" for line in audit_failures),
            )
        )
    return [ap_clean, ap_faults, survival, ttr, retries], audit_failures


def main(
    settings: Optional[ExperimentSettings] = None,
    csv_dir: Optional[str] = None,
    utilizations: Sequence[float] = UTILIZATIONS,
    jobs: int = 1,
) -> str:
    series, audit_failures = run_survivability(settings, utilizations, jobs=jobs)
    ap_series, aux_series = series[:3], series[3:]
    out = [
        "Survivability — admission and recovery under link faults "
        f"(MTBF={DEFAULT_FAULTS.link_mtbf:g}s, MTTR={DEFAULT_FAULTS.link_mttr:g}s, "
        f"beta={BETA:g})",
        "",
        format_table("U", ap_series),
        "",
        format_table("U", aux_series),
    ]
    if csv_dir:
        import os

        from repro.experiments.artifacts import write_series_csv

        path = write_series_csv(
            os.path.join(csv_dir, "survivability.csv"), "U", series
        )
        out.append(f"\n[series written to {path}]")
    out.append("")
    if audit_failures:
        out.append("AUDIT FAILURES (leaked bandwidth or broken contracts):")
        out.extend(f"  {line}" for line in audit_failures)
    else:
        out.append(
            "Audit: every run ended with zero leaked synchronous bandwidth "
            "and zero deadline violations among surviving connections."
        )
    return "\n".join(out)
