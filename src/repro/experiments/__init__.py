"""Experiment harness: regenerates every figure of the paper's evaluation.

* :mod:`repro.experiments.figure7` — AP vs beta at U in {0.3, 0.6, 0.9}.
* :mod:`repro.experiments.figure8` — AP vs U at beta in {0, 0.5, 1.0}.
* :mod:`repro.experiments.validation` — analytic bound vs packet-level
  simulation (experiment E3).
* :mod:`repro.experiments.ablations` — allocation-policy and workload
  ablations (E4/E5).

Run from the command line::

    python -m repro.experiments figure7 [--quick] [--no-calibration]
    python -m repro.experiments figure8 [--quick]
    python -m repro.experiments validation
    python -m repro.experiments ablation-policies
    python -m repro.experiments ablation-workload
"""

from repro.experiments.common import ExperimentSettings, SeriesResult, format_table
from repro.experiments.figure7 import run_figure7
from repro.experiments.figure8 import run_figure8
from repro.experiments.validation import run_validation
from repro.experiments.ablations import run_policy_ablation, run_workload_ablation

__all__ = [
    "ExperimentSettings",
    "SeriesResult",
    "format_table",
    "run_figure7",
    "run_figure8",
    "run_policy_ablation",
    "run_validation",
    "run_workload_ablation",
]
