"""Figure 7: sensitivity of the admission probability to beta.

The paper simulates the 3-ring network at backbone utilizations
U in {0.3, 0.6, 0.9} and sweeps beta from 0 to 1; it reports that AP peaks
for interior beta (roughly [0.4, 0.7]) and that the sensitivity grows with
load.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.common import (
    ExperimentSettings,
    SeriesResult,
    format_table,
    mean_and_spread,
)
from repro.experiments.parallel import SimTask, run_sims
from repro.scenario.loader import connection_sim_config

#: The paper's loading conditions.
UTILIZATIONS = (0.3, 0.6, 0.9)
#: The beta sweep of Figure 7.
BETAS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def run_figure7(
    settings: Optional[ExperimentSettings] = None,
    utilizations: Sequence[float] = UTILIZATIONS,
    betas: Sequence[float] = BETAS,
    jobs: int = 1,
) -> List[SeriesResult]:
    """Regenerate the Figure 7 series (one per utilization)."""
    settings = settings or ExperimentSettings()
    tasks = [
        SimTask(connection_sim_config(settings.scenario(u, beta, seed)))
        for u in utilizations
        for beta in betas
        for seed in settings.seeds
    ]
    results = iter(run_sims(tasks, jobs=jobs))
    series: List[SeriesResult] = []
    for u in utilizations:
        s = SeriesResult(label=f"U={u:g}")
        for beta in betas:
            aps = [next(results).admission_probability for _ in settings.seeds]
            mean, spread = mean_and_spread(aps)
            s.add(beta, mean, spread)
        series.append(s)
    return series


def main(
    settings: Optional[ExperimentSettings] = None,
    csv_dir: Optional[str] = None,
    jobs: int = 1,
) -> str:
    series = run_figure7(settings, jobs=jobs)
    out = ["Figure 7 — Admission probability vs beta", ""]
    out.append(format_table("beta", series))
    if csv_dir:
        from repro.experiments.artifacts import write_series_csv
        import os

        path = write_series_csv(os.path.join(csv_dir, "figure7.csv"), "beta", series)
        out.append(f"\n[series written to {path}]")
    out.append("")
    for s in series:
        best = max(range(len(s.xs)), key=lambda i: s.ys[i])
        out.append(
            f"  {s.label}: best beta = {s.xs[best]:.1f} (AP={s.ys[best]:.3f}); "
            f"AP(0)={s.ys[0]:.3f}, AP(1)={s.ys[-1]:.3f}"
        )
    return "\n".join(out)
