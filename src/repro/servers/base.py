"""Base classes for server analysis."""

from __future__ import annotations

import abc
import dataclasses
from typing import Sequence

from repro.envelopes.curve import Curve


@dataclasses.dataclass(frozen=True)
class ServerAnalysis:
    """The result of analyzing one server for one connection.

    Attributes
    ----------
    delay_bound:
        Worst-case delay suffered by the connection's traffic at this server
        (seconds).  ``math.inf`` is never stored here — servers raise
        :class:`repro.errors.UnstableSystemError` or
        :class:`repro.errors.BufferOverflowError` instead, so callers cannot
        accidentally ignore an infeasible analysis.
    output:
        The connection's traffic envelope at the server's exit.
    backlog_bound:
        Worst-case backlog (bits) the connection contributes at this server.
    busy_interval:
        The maximal busy interval used in the analysis (seconds); 0 for
        constant-delay servers.
    """

    delay_bound: float
    output: Curve
    backlog_bound: float = 0.0
    busy_interval: float = 0.0


class DedicatedServer(abc.ABC):
    """A server whose behaviour towards a connection depends only on that
    connection's own traffic (e.g. the source FDDI MAC, a delay line, the
    frame/cell converters)."""

    #: Human-readable name used in per-hop delay reports.
    name: str = "server"

    @abc.abstractmethod
    def analyze(self, arrival: Curve) -> ServerAnalysis:
        """Analyze the server for a connection with input envelope ``arrival``."""

    def cache_key(self):
        """A hashable key identifying this server's *behaviour* (not its
        name), or ``None`` if results must not be memoized.  Two servers
        with equal keys must produce identical analyses for identical
        inputs; the delay engine memoizes on ``(cache_key, envelope)``."""
        return None


class SharedServer(abc.ABC):
    """A server multiplexing several connections onto one resource (the ATM
    output ports).  Its delay bound for a *tagged* connection depends on the
    envelopes of all connections sharing it."""

    name: str = "shared-server"

    @abc.abstractmethod
    def analyze_tagged(
        self, tagged: Curve, cross: Sequence[Curve]
    ) -> ServerAnalysis:
        """Analyze the tagged connection given the cross-traffic envelopes."""
