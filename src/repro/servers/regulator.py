"""Greedy traffic regulators (shapers).

Ref [15] of the paper ("Using Traffic Regulation to Meet End-to-End
Deadlines in ATM LANs") inserts *regulators* at network entry points:
a regulator buffers traffic and releases it no faster than a contracted
envelope, trading a bounded shaping delay for much smaller bursts inside
the backbone (smaller port delays and buffers for everyone else).

The classical greedy-shaper results make the analysis exact:

* the output envelope is the pointwise minimum of the input envelope and
  the (sub-additive) shaping envelope;
* the worst-case shaping delay is the horizontal deviation between the
  input envelope and the shaping curve;
* the worst-case shaper backlog is their vertical deviation.
"""

from __future__ import annotations

import math

from repro.envelopes.curve import Curve
from repro.envelopes.operations import (
    busy_interval,
    horizontal_deviation,
    vertical_deviation,
)
from repro.errors import BufferOverflowError, ConfigurationError, UnstableSystemError
from repro.servers.base import DedicatedServer, ServerAnalysis


class RegulatorServer(DedicatedServer):
    """A greedy leaky-bucket shaper: release at most ``sigma + rho * t``.

    Parameters
    ----------
    sigma:
        Burst allowance, bits.
    rho:
        Sustained release rate, bits/second.
    peak:
        Optional peak-rate cap on the release (bits/second).
    buffer_bits:
        Shaper buffer (``inf`` = unbounded).
    """

    def __init__(
        self,
        sigma: float,
        rho: float,
        peak: float = math.inf,
        buffer_bits: float = math.inf,
        name: str = "regulator",
    ) -> None:
        if sigma < 0 or rho <= 0:
            raise ConfigurationError("need sigma >= 0 and rho > 0")
        if peak <= 0 or (math.isfinite(peak) and peak < rho):
            raise ConfigurationError("peak must be positive and >= rho")
        if buffer_bits <= 0:
            raise ConfigurationError("buffer must be positive (or inf)")
        self.sigma = float(sigma)
        self.rho = float(rho)
        self.peak = float(peak)
        self.buffer_bits = float(buffer_bits)
        self.name = name

    def shaping_curve(self) -> Curve:
        bucket = Curve.affine(self.sigma, self.rho)
        if math.isinf(self.peak):
            return bucket
        return bucket.minimum(Curve.affine(0.0, self.peak))

    def analyze(self, arrival: Curve) -> ServerAnalysis:
        shape = self.shaping_curve()
        if arrival.final_slope > self.rho * (1 + 1e-12):
            raise UnstableSystemError(
                f"{self.name}: arrival rate {arrival.final_slope:.6g} b/s "
                f"exceeds shaping rate {self.rho:.6g} b/s"
            )
        b = busy_interval(arrival, shape)
        if math.isinf(b):
            raise UnstableSystemError(f"{self.name}: unbounded busy interval")
        backlog = vertical_deviation(arrival, shape, t_max=b)
        if backlog > self.buffer_bits + 1e-9:
            raise BufferOverflowError(
                f"{self.name}: shaper backlog {backlog:.6g} bits exceeds buffer"
            )
        delay = horizontal_deviation(arrival, shape, t_max=b)
        if math.isinf(delay):
            raise UnstableSystemError(f"{self.name}: unbounded shaping delay")
        output = arrival.minimum(shape)
        return ServerAnalysis(
            delay_bound=delay,
            output=output,
            backlog_bound=backlog,
            busy_interval=b,
        )

    def cache_key(self):
        return ("regulator", self.sigma, self.rho, self.peak, self.buffer_bits)

    def __repr__(self) -> str:
        return (
            f"RegulatorServer({self.name!r}, sigma={self.sigma:.4g}b, "
            f"rho={self.rho:.4g}b/s)"
        )
