"""Chains of dedicated servers (compound servers)."""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.envelopes.curve import Curve
from repro.servers.base import DedicatedServer, ServerAnalysis


class ServerChain(DedicatedServer):
    """A sequence of dedicated servers traversed in order.

    The chain's delay bound is the sum of the per-server bounds computed
    with each server's *actual* input envelope (the previous server's
    output), exactly as Eq. (7) sums the compound-server delays.
    """

    def __init__(self, servers: Iterable[DedicatedServer], name: str = "chain") -> None:
        self.servers: List[DedicatedServer] = list(servers)
        self.name = name

    def analyze(self, arrival: Curve) -> ServerAnalysis:
        total_delay = 0.0
        max_backlog = 0.0
        max_busy = 0.0
        envelope = arrival
        for server in self.servers:
            result = server.analyze(envelope)
            total_delay += result.delay_bound
            max_backlog = max(max_backlog, result.backlog_bound)
            max_busy = max(max_busy, result.busy_interval)
            envelope = result.output
        return ServerAnalysis(
            delay_bound=total_delay,
            output=envelope,
            backlog_bound=max_backlog,
            busy_interval=max_busy,
        )

    def analyze_per_hop(
        self, arrival: Curve
    ) -> Tuple[List[Tuple[str, ServerAnalysis]], Curve]:
        """Like :meth:`analyze` but returns the per-server breakdown."""
        breakdown: List[Tuple[str, ServerAnalysis]] = []
        envelope = arrival
        for server in self.servers:
            result = server.analyze(envelope)
            breakdown.append((server.name, result))
            envelope = result.output
        return breakdown, envelope

    def __repr__(self) -> str:
        inner = " -> ".join(s.name for s in self.servers)
        return f"ServerChain({self.name!r}: {inner})"
