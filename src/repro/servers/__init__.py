"""Server abstractions for the decomposition analysis of Section 4.

Every network component a connection traverses is modeled as a *server* that
(1) delays the connection's traffic by a bounded amount and (2) emits the
traffic with a (possibly reshaped) output envelope.  Compound servers
(FDDI_S, ID_S, ...) are chains of simple servers; the end-to-end bound is
the sum over the chain (Eq. 7).
"""

from repro.servers.base import DedicatedServer, ServerAnalysis, SharedServer
from repro.servers.constant import ConstantDelayServer
from repro.servers.compound import ServerChain
from repro.servers.regulator import RegulatorServer

__all__ = [
    "ConstantDelayServer",
    "DedicatedServer",
    "RegulatorServer",
    "ServerAnalysis",
    "ServerChain",
    "SharedServer",
]
