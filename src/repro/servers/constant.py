"""Constant-delay servers.

The paper models several stages this way: the FDDI delay line (bit
propagation around the ring), the interface device's input port and frame
switch, and ATM link propagation.  A constant-delay server delays every bit
by (at most) a fixed amount and does not reshape traffic — the output
envelope equals the input envelope (Eqs. 13, 17, 19).
"""

from __future__ import annotations

from repro.envelopes.curve import Curve
from repro.errors import ConfigurationError
from repro.servers.base import DedicatedServer, ServerAnalysis


class ConstantDelayServer(DedicatedServer):
    """Delays every bit by exactly ``delay`` seconds."""

    def __init__(self, delay: float, name: str = "constant-delay") -> None:
        if delay < 0:
            raise ConfigurationError("delay must be non-negative")
        self.delay = float(delay)
        self.name = name

    def analyze(self, arrival: Curve) -> ServerAnalysis:
        return ServerAnalysis(
            delay_bound=self.delay,
            output=arrival,
            backlog_bound=0.0,
            busy_interval=0.0,
        )

    def cache_key(self):
        return ("const", self.delay)

    def __repr__(self) -> str:
        return f"ConstantDelayServer({self.name!r}, {self.delay:.3g}s)"
