"""Forward dataflow over lint CFGs.

A small worklist fixed-point driver in the same discipline as the delay
engine's port worklist (:mod:`repro.core.delay`): deterministic
processing order, re-queue only what changed, and a hard iteration cap
that turns a (theoretically impossible) divergence into a loud error
instead of a hang.

Termination does not rely on the analysis's transfer function being
monotone: incoming states are **accumulated** into each block's IN
state with :meth:`Analysis.join` (they are never recomputed from
scratch), so IN states only ever move up the lattice.  With a finite
fact universe — every analysis here derives its facts from the finite
set of names/lines in one function — the fixpoint is reached in a
bounded number of visits.

Exception edges (``Block.except_targets``) receive the block's **IN**
state, not its OUT state: a statement that raises is assumed not to
have completed its own effect (see :mod:`repro.lint.cfg`).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Generic, List, Optional, TypeVar

from repro.lint.cfg import CFG, Event

S = TypeVar("S")


class DataflowDivergenceError(RuntimeError):
    """The fixpoint iteration exceeded its visit budget."""


class Analysis(Generic[S]):
    """One forward analysis: an initial state, a join, and a transfer."""

    def initial_state(self) -> S:
        """The state on entry to the function."""
        raise NotImplementedError

    def join(self, a: S, b: S) -> S:
        """Least upper bound of two states (associative, commutative)."""
        raise NotImplementedError

    def transfer(self, state: S, event: Event) -> S:
        """The state after ``event`` executes in ``state``."""
        raise NotImplementedError


@dataclasses.dataclass
class FixpointResult(Generic[S]):
    """Converged per-block states (blocks never reached are absent)."""

    block_in: Dict[int, S]
    block_out: Dict[int, S]
    visits: int


def run_forward(
    cfg: CFG,
    analysis: Analysis[S],
    max_visits: Optional[int] = None,
) -> FixpointResult[S]:
    """Iterate ``analysis`` over ``cfg`` to a fixpoint.

    ``max_visits`` bounds the total number of block evaluations
    (default: generous in the block count); exceeding it raises
    :class:`DataflowDivergenceError`.
    """
    if max_visits is None:
        max_visits = 256 * (len(cfg.blocks) + 1)
    block_in: Dict[int, S] = {cfg.entry: analysis.initial_state()}
    block_out: Dict[int, S] = {}
    pending = {cfg.entry}
    visits = 0
    while pending:
        visits += 1
        if visits > max_visits:
            raise DataflowDivergenceError(
                f"dataflow did not converge within {max_visits} block "
                f"visits ({len(cfg.blocks)} blocks)"
            )
        block_id = min(pending)  # deterministic order
        pending.discard(block_id)
        block = cfg.blocks[block_id]
        state = block_in[block_id]

        # Exception edges: the pre-block state reaches the handlers.
        for target in block.except_targets:
            if _accumulate(block_in, target, state, analysis):
                pending.add(target)

        for event in block.events:
            state = analysis.transfer(state, event)
        changed = block_id not in block_out or block_out[block_id] != state
        block_out[block_id] = state
        if changed:
            for target in block.succ:
                if _accumulate(block_in, target, state, analysis):
                    pending.add(target)
    return FixpointResult(block_in=block_in, block_out=block_out, visits=visits)


def _accumulate(
    block_in: Dict[int, S], target: int, incoming: S, analysis: Analysis[S]
) -> bool:
    """Join ``incoming`` into ``block_in[target]``; True when it changed."""
    if target not in block_in:
        block_in[target] = incoming
        return True
    joined = analysis.join(block_in[target], incoming)
    if joined != block_in[target]:
        block_in[target] = joined
        return True
    return False


def replay(
    cfg: CFG,
    result: FixpointResult[S],
    analysis: Analysis[S],
    visit: Callable[[S, Event], None],
) -> None:
    """Call ``visit(state_before_event, event)`` for every reached event.

    This is the reporting pass: the fixpoint gives each block's IN
    state, and rules inspect the state *in front of* each event (e.g.
    "are any mutation facts live at this ``raise``?").  Blocks are
    walked in id order so findings come out deterministic.
    """
    for block_id in cfg.block_ids():
        if block_id not in result.block_in:
            continue  # unreachable
        state = result.block_in[block_id]
        for event in cfg.blocks[block_id].events:
            visit(state, event)
            state = analysis.transfer(state, event)


def reached_events(cfg: CFG, result: FixpointResult[S]) -> List[Event]:
    """Every event of a reachable block, in deterministic order."""
    out: List[Event] = []
    for block_id in cfg.block_ids():
        if block_id in result.block_in:
            out.extend(cfg.blocks[block_id].events)
    return out
