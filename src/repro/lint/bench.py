"""Tracked lint benchmark: ``python -m repro bench --suite lint``.

The committed artifact (``BENCH_lint.json``) gates three properties:

* **cleanliness** — the shipped tree lints clean under RL001-RL008;
* **determinism** — repeated runs produce identical findings;
* **latency budget** — the median wall time of one full-tree run stays
  under the committed ``budget_s`` ceiling.  The budget is deliberately
  generous (an order of magnitude above the observed median) so it
  catches an accidentally super-linear rule, not machine jitter.

Raw latency quantiles are recorded for review diffs but never gated.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path
from typing import Any, Dict, List, Tuple

import repro
from repro.lint.engine import ALL_RULES, iter_python_files, lint_paths

#: Gated ceiling on the median full-tree lint time, in seconds.
DEFAULT_BUDGET_S = 10.0


def _src_root() -> Path:
    """The ``src`` directory containing the installed ``repro`` package."""
    return Path(repro.__file__).resolve().parents[1]


def _p90(times: List[float]) -> float:
    ordered = sorted(times)
    return ordered[min(len(ordered) - 1, int(0.9 * len(ordered)))]


def run_lint_bench(quick: bool = False) -> Dict[str, Any]:
    rounds, warmup = (3, 1) if quick else (5, 2)
    src = str(_src_root())
    n_files = sum(1 for _ in iter_python_files([src]))
    baseline = lint_paths([src])
    repeat = baseline
    times: List[float] = []
    for _ in range(rounds + warmup):
        t0 = time.perf_counter()
        repeat = lint_paths([src])
        times.append(time.perf_counter() - t0)
    times = times[warmup:]
    by_code: Dict[str, int] = {}
    for finding in baseline:
        by_code[finding.code] = by_code.get(finding.code, 0) + 1
    median = statistics.median(times)
    return {
        "suite": "lint",
        "quick": quick,
        "rules": [rule.code for rule in ALL_RULES],
        "n_files": n_files,
        "findings_total": len(baseline),
        "findings_by_code": by_code,
        "clean": not baseline,
        "deterministic": repeat == baseline,
        "rounds": len(times),
        "median_s": median,
        "p90_s": _p90(times),
        "per_file_ms": (median / n_files * 1000.0) if n_files else 0.0,
        "budget_s": DEFAULT_BUDGET_S,
    }


def check_lint_payload(
    current: Dict[str, Any], committed: Dict[str, Any]
) -> List[str]:
    """Gated comparison of a fresh run against the committed artifact."""
    problems: List[str] = []
    for payload, who in ((current, "current"), (committed, "committed")):
        if payload.get("clean") is not True:
            problems.append(
                f"{who}: tree is not lint-clean "
                f"({payload.get('findings_total')} finding(s): "
                f"{payload.get('findings_by_code')})"
            )
        if payload.get("deterministic") is not True:
            problems.append(f"{who}: repeated lint runs diverged")
    if current.get("rules") != committed.get("rules"):
        problems.append(
            f"rule catalog drifted: {current.get('rules')} != committed "
            f"{committed.get('rules')} (regenerate BENCH_lint.json)"
        )
    budget = committed.get("budget_s", DEFAULT_BUDGET_S)
    median = current.get("median_s")
    if not isinstance(budget, (int, float)) or not isinstance(
        median, (int, float)
    ):
        problems.append("payload is missing budget_s/median_s")
    elif median > budget:
        problems.append(
            f"lint run blew its latency budget: median {median:.2f}s > "
            f"{budget:.2f}s ceiling"
        )
    return problems


def run_and_check(
    quick: bool, committed_path: str
) -> Tuple[Dict[str, Any], List[str]]:
    payload = run_lint_bench(quick)
    try:
        with open(committed_path, encoding="utf-8") as fh:
            committed = json.load(fh)
    except (OSError, ValueError) as exc:
        return payload, [f"cannot read committed payload: {exc}"]
    return payload, check_lint_payload(payload, committed)


def format_report(payload: Dict[str, Any]) -> str:
    lines = [
        "lint benchmark"
        + (" (quick)" if payload["quick"] else "")
        + " — full-tree reprolint runs, warm rounds",
        "",
        f"  files: {payload['n_files']}  rules: {len(payload['rules'])}  "
        f"findings: {payload['findings_total']}"
        + ("" if payload["clean"] else f" {payload['findings_by_code']}"),
        f"  median: {payload['median_s'] * 1000.0:.0f}ms  "
        f"p90: {payload['p90_s'] * 1000.0:.0f}ms  "
        f"per file: {payload['per_file_ms']:.1f}ms  "
        f"(budget {payload['budget_s']:.0f}s)",
        "  deterministic: " + ("yes" if payload["deterministic"] else "NO — BUG"),
    ]
    return "\n".join(lines)
