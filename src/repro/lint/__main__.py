"""CLI for reprolint: ``python -m repro.lint [paths...]``.

Exit codes: 0 = clean, 1 = findings, 2 = linter crash (or usage error).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.lint.engine import (
    ALL_RULES,
    format_json_report,
    format_report,
    lint_paths,
    select_rules,
)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description=(
            "Domain-aware static analysis: determinism (RL001), unit "
            "discipline (RL002), float safety (RL003), cache purity "
            "(RL004), exception transactionality (RL006), asyncio "
            "atomicity (RL007), dimension inference (RL008)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help=(
            "also write the JSON report to PATH (stdout keeps --format); "
            "used by CI to publish the report artifact"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--no-hints",
        action="store_true",
        help="omit autofix hints from the report",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.name}: {rule.description}")
            print(f"       fix: {rule.autofix_hint}")
        return 0

    try:
        rules = select_rules(
            args.select.split(",") if args.select else None
        )
    except ValueError as exc:
        parser.error(str(exc))
    try:
        findings = lint_paths(args.paths, rules=rules)
        if args.format == "json":
            sys.stdout.write(format_json_report(findings))
        else:
            print(format_report(findings, show_hints=not args.no_hints))
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(format_json_report(findings))
    except Exception as exc:  # a linter bug must not masquerade as "clean"
        print(
            f"reprolint: internal error: {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        return 2
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
