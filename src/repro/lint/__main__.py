"""CLI for reprolint: ``python -m repro.lint [paths...]``."""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.lint.engine import format_report, lint_paths, select_rules
from repro.lint.rules import ALL_RULES


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description=(
            "Domain-aware static analysis: determinism (RL001), unit "
            "discipline (RL002), float safety (RL003), cache purity "
            "(RL004)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--no-hints",
        action="store_true",
        help="omit autofix hints from the report",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.name}: {rule.description}")
            print(f"       fix: {rule.autofix_hint}")
        return 0

    try:
        rules = select_rules(
            args.select.split(",") if args.select else None
        )
    except ValueError as exc:
        parser.error(str(exc))
    findings = lint_paths(args.paths, rules=rules)
    print(format_report(findings, show_hints=not args.no_hints))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
