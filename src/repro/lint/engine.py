"""File walking, rule dispatch and reporting for ``repro lint``."""

from __future__ import annotations

import ast
import os
from pathlib import Path, PurePosixPath
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding, parse_suppressions
from repro.lint.rules import ALL_RULES, Rule


def iter_python_files(paths: Sequence[str]) -> Iterable[Path]:
    """Every ``.py`` file under ``paths`` (files are taken verbatim)."""
    seen: Set[str] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            candidates: Iterable[Path] = [path]
        else:
            candidates = sorted(path.rglob("*.py"))
        for candidate in candidates:
            key = os.path.abspath(candidate)
            if key not in seen:
                seen.add(key)
                yield candidate


def select_rules(codes: Optional[Sequence[str]] = None) -> Tuple[Rule, ...]:
    """The rule instances to run (all by default)."""
    if not codes:
        return ALL_RULES
    wanted = {code.strip().upper() for code in codes}
    unknown = wanted - {rule.code for rule in ALL_RULES}
    if unknown:
        raise ValueError(f"unknown rule code(s): {sorted(unknown)}")
    return tuple(rule for rule in ALL_RULES if rule.code in wanted)


def lint_source(
    source: str,
    path: str,
    rules: Optional[Sequence[Rule]] = None,
    virtual_path: Optional[str] = None,
) -> List[Finding]:
    """Lint one source string.

    ``virtual_path`` overrides the path used for rule *scoping* (handy for
    fixture files exercising rules outside their real package layout);
    findings still report ``path``.
    """
    scope = PurePosixPath((virtual_path or path).replace(os.sep, "/"))
    active = [rule for rule in rules or ALL_RULES if rule.applies_to(scope)]
    if not active:
        return []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                code="RL000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    suppressions = parse_suppressions(source)
    findings: List[Finding] = []
    for lineno in suppressions.unjustified:
        findings.append(
            Finding(
                path=path,
                line=lineno,
                col=1,
                code="RL005",
                message="suppression pragma lacks a '--' justification",
                hint="append ' -- <why>' after the disabled code(s)",
            )
        )
    for rule in active:
        for finding in rule.check(tree, source, path, scope_path=str(scope)):
            if not suppressions.is_suppressed(finding):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint every Python file under ``paths``; findings in path order."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(
                Finding(
                    path=str(path),
                    line=1,
                    col=1,
                    code="RL000",
                    message=f"unreadable file: {exc}",
                )
            )
            continue
        findings.extend(lint_source(source, str(path), rules=rules))
    return findings


def format_report(findings: Sequence[Finding], show_hints: bool = True) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.format(show_hint=show_hints) for finding in findings]
    if findings:
        by_code: Dict[str, int] = {}
        for finding in findings:
            by_code[finding.code] = by_code.get(finding.code, 0) + 1
        summary = ", ".join(
            f"{code}: {count}" for code, count in sorted(by_code.items())
        )
        lines.append(f"reprolint: {len(findings)} finding(s) ({summary})")
    else:
        lines.append("reprolint: clean")
    return "\n".join(lines)
