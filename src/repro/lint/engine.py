"""File walking, rule dispatch and reporting for ``repro lint``."""

from __future__ import annotations

import ast
import json
import os
from pathlib import Path, PurePosixPath
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding, Suppressions, parse_suppressions
from repro.lint.rules import BASE_RULES, Rule
from repro.lint.rules_flow import FLOW_RULES

#: The full registry, in rule-code order.
ALL_RULES: Tuple[Rule, ...] = BASE_RULES + FLOW_RULES

#: Schema version of the JSON report (bump on incompatible change).
JSON_SCHEMA_VERSION = 1


def iter_python_files(paths: Sequence[str]) -> Iterable[Path]:
    """Every ``.py`` file under ``paths`` (files are taken verbatim)."""
    seen: Set[str] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            candidates: Iterable[Path] = [path]
        else:
            candidates = sorted(path.rglob("*.py"))
        for candidate in candidates:
            key = os.path.abspath(candidate)
            if key not in seen:
                seen.add(key)
                yield candidate


def select_rules(codes: Optional[Sequence[str]] = None) -> Tuple[Rule, ...]:
    """The rule instances to run (all by default)."""
    if not codes:
        return ALL_RULES
    wanted = {code.strip().upper() for code in codes}
    unknown = wanted - {rule.code for rule in ALL_RULES}
    if unknown:
        raise ValueError(f"unknown rule code(s): {sorted(unknown)}")
    return tuple(rule for rule in ALL_RULES if rule.code in wanted)


def lint_source(
    source: str,
    path: str,
    rules: Optional[Sequence[Rule]] = None,
    virtual_path: Optional[str] = None,
) -> List[Finding]:
    """Lint one source string.

    ``virtual_path`` overrides the path used for rule *scoping* (handy for
    fixture files exercising rules outside their real package layout);
    findings still report ``path``.
    """
    scope = PurePosixPath((virtual_path or path).replace(os.sep, "/"))
    selected = tuple(rules or ALL_RULES)
    active = [rule for rule in selected if rule.applies_to(scope)]
    if not active:
        return []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                code="RL000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    suppressions = parse_suppressions(source)
    findings: List[Finding] = []
    for lineno in suppressions.unjustified:
        findings.append(
            Finding(
                path=path,
                line=lineno,
                col=1,
                code="RL005",
                message="suppression pragma lacks a '--' justification",
                hint="append ' -- <why>' after the disabled code(s)",
            )
        )
    used: Set[Tuple[int, str]] = set()
    for rule in active:
        for finding in rule.check(tree, source, path, scope_path=str(scope)):
            hits = suppressions.match(finding)
            if hits:
                used.update(hits)
            else:
                findings.append(finding)
    findings.extend(
        _stale_pragma_findings(
            suppressions, used, frozenset(r.code for r in selected), path
        )
    )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def _stale_pragma_findings(
    suppressions: Suppressions,
    used: Set[Tuple[int, str]],
    selected_codes: FrozenSet[str],
    path: str,
) -> List[Finding]:
    """RL005 findings for pragma entries that suppressed nothing.

    An entry is only judged when the run could have produced its
    findings: a plain code must be among the selected rules, ``ALL``
    requires the full rule set.  ``RL005`` entries are never judged —
    RL005 findings are engine-emitted and not suppressible.
    """
    all_codes = {rule.code for rule in ALL_RULES}
    findings: List[Finding] = []
    for index, pragma in enumerate(suppressions.pragmas):
        for code in pragma.codes:
            if (index, code) in used or code == "RL005":
                continue
            if code == "ALL":
                if not all_codes <= selected_codes:
                    continue
                message = "stale suppression: this pragma suppresses nothing"
            else:
                if code not in selected_codes:
                    continue
                message = f"stale suppression: {code} is not triggered here"
            findings.append(
                Finding(
                    path=path,
                    line=pragma.line,
                    col=1,
                    code="RL005",
                    message=message,
                    hint="remove the pragma (or the unused code from it)",
                )
            )
    return findings


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint every Python file under ``paths``; findings in path order."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(
                Finding(
                    path=str(path),
                    line=1,
                    col=1,
                    code="RL000",
                    message=f"unreadable file: {exc}",
                )
            )
            continue
        findings.extend(lint_source(source, str(path), rules=rules))
    return findings


def format_report(findings: Sequence[Finding], show_hints: bool = True) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.format(show_hint=show_hints) for finding in findings]
    if findings:
        summary = ", ".join(
            f"{code}: {count}" for code, count in sorted(_by_code(findings).items())
        )
        lines.append(f"reprolint: {len(findings)} finding(s) ({summary})")
    else:
        lines.append("reprolint: clean")
    return "\n".join(lines)


def format_json_report(findings: Sequence[Finding]) -> str:
    """Machine-readable report (schema documented in docs/static_analysis.md).

    Deterministic: findings keep engine order (path, line, col, code) and
    keys are sorted, so two runs over the same tree render byte-identical
    reports.
    """
    payload = {
        "schema": "reprolint-report",
        "version": JSON_SCHEMA_VERSION,
        "findings": [finding.to_dict() for finding in findings],
        "summary": {
            "total": len(findings),
            "by_code": _by_code(findings),
            "clean": not findings,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _by_code(findings: Sequence[Finding]) -> Dict[str, int]:
    by_code: Dict[str, int] = {}
    for finding in findings:
        by_code[finding.code] = by_code.get(finding.code, 0) + 1
    return by_code
