"""Finding records and ``# reprolint: disable=`` pragma handling.

A finding pins a rule violation to a file position.  Findings can be
suppressed at the line level with a trailing pragma::

    t0 = time.time()  # reprolint: disable=RL001 -- reporting-only timer

or for a whole file by placing the pragma on a comment-only line within
the first ten lines of the file::

    # reprolint: disable-file=RL002 -- this module IS the unit table

The text after ``--`` is the justification; a pragma carrying no
justification is itself reported (RL005), so suppressions stay
reviewable.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Dict, FrozenSet, List, Set, Tuple

#: Matches one pragma occurrence anywhere in a physical line.
_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*(disable|disable-file)\s*=\s*"
    r"(?P<codes>[A-Za-z0-9_,\s]+?)"
    r"(?:\s*--\s*(?P<why>.*))?$"
)

#: How many leading lines may carry a file-level pragma.
_FILE_PRAGMA_WINDOW = 10


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source position."""

    path: str
    line: int
    col: int
    code: str
    message: str
    hint: str = ""

    def format(self, show_hint: bool = True) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
        if show_hint and self.hint:
            text += f"  [fix: {self.hint}]"
        return text


@dataclasses.dataclass(frozen=True)
class Suppressions:
    """Parsed pragmas of one file: per-line and file-wide disabled codes."""

    by_line: Dict[int, FrozenSet[str]]
    file_wide: FrozenSet[str]
    #: Lines whose pragma carried no ``-- justification`` text.
    unjustified: Tuple[int, ...]

    def is_suppressed(self, finding: Finding) -> bool:
        if "ALL" in self.file_wide or finding.code in self.file_wide:
            return True
        codes = self.by_line.get(finding.line, frozenset())
        return "ALL" in codes or finding.code in codes


def parse_suppressions(source: str) -> Suppressions:
    """Extract every ``reprolint`` pragma from ``source``.

    Line pragmas apply to their own physical line; a pragma on a
    comment-only line also covers the next line, so a finding on a long
    statement can carry its justification above it.
    """
    by_line: Dict[int, Set[str]] = {}
    file_wide: Set[str] = set()
    unjustified: List[int] = []
    lines = source.splitlines()
    for lineno, raw in enumerate(lines, start=1):
        match = _PRAGMA_RE.search(raw)
        if match is None:
            continue
        codes = frozenset(
            code.strip().upper()
            for code in match.group("codes").split(",")
            if code.strip()
        )
        if not codes:
            continue
        why = (match.group("why") or "").strip()
        if not why:
            unjustified.append(lineno)
        kind = match.group(1)
        comment_only = raw.lstrip().startswith("#")
        if kind == "disable-file":
            if lineno <= _FILE_PRAGMA_WINDOW and comment_only:
                file_wide |= codes
            else:  # misplaced file pragma degrades to a line pragma
                by_line.setdefault(lineno, set()).update(codes)
            continue
        by_line.setdefault(lineno, set()).update(codes)
        if comment_only:
            by_line.setdefault(lineno + 1, set()).update(codes)
    return Suppressions(
        by_line={line: frozenset(codes) for line, codes in by_line.items()},
        file_wide=frozenset(file_wide),
        unjustified=tuple(unjustified),
    )
