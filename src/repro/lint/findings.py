"""Finding records and ``# reprolint: disable=`` pragma handling.

A finding pins a rule violation to a file position.  Findings can be
suppressed at the line level with a trailing pragma (``RL0xx`` stands
for a real rule code; the placeholder keeps these examples from parsing
as live pragmas of *this* file)::

    t0 = time.time()  # reprolint: disable=RL0xx -- reporting-only timer

or for a whole file by placing the pragma on a comment-only line within
the first ten lines of the file::

    # reprolint: disable-file=RL0xx -- this module IS the unit table

The text after ``--`` is the justification; a pragma carrying no
justification is itself reported (RL005), so suppressions stay
reviewable.  The engine also tracks which pragmas actually matched a
finding: a pragma that suppresses nothing is reported as *stale*
(RL005), so fixed code sheds its pragmas instead of fossilizing them.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Dict, FrozenSet, List, Set, Tuple

#: Matches one pragma occurrence anywhere in a physical line.
_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*(disable|disable-file)\s*=\s*"
    r"(?P<codes>[A-Za-z0-9_,\s]+?)"
    r"(?:\s*--\s*(?P<why>.*))?$"
)

#: How many leading lines may carry a file-level pragma.
_FILE_PRAGMA_WINDOW = 10


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source position."""

    path: str
    line: int
    col: int
    code: str
    message: str
    hint: str = ""

    def format(self, show_hint: bool = True) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
        if show_hint and self.hint:
            text += f"  [fix: {self.hint}]"
        return text

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (stable key set; see docs/static_analysis.md)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "hint": self.hint,
        }


@dataclasses.dataclass(frozen=True)
class Pragma:
    """One parsed suppression pragma."""

    #: Physical line the pragma text sits on.
    line: int
    #: ``disable`` or ``disable-file``.
    kind: str
    codes: Tuple[str, ...]
    justified: bool


@dataclasses.dataclass(frozen=True)
class Suppressions:
    """Parsed pragmas of one file: per-line and file-wide disabled codes."""

    by_line: Dict[int, FrozenSet[str]]
    file_wide: FrozenSet[str]
    #: Lines whose pragma carried no ``-- justification`` text.
    unjustified: Tuple[int, ...]
    #: Every pragma, in source order (indices identify them in ``match``).
    pragmas: Tuple[Pragma, ...] = ()
    #: Effective line -> indices into ``pragmas`` covering that line.
    line_pragmas: Dict[int, Tuple[int, ...]] = dataclasses.field(
        default_factory=dict
    )
    #: Indices into ``pragmas`` that act file-wide.
    file_pragmas: Tuple[int, ...] = ()

    def match(self, finding: Finding) -> List[Tuple[int, str]]:
        """``(pragma_index, code)`` pairs that suppress ``finding``.

        ``code`` is the entry as written in the pragma (a rule code or
        ``ALL``), so the engine can mark exactly which entries earned
        their keep when hunting stale suppressions.
        """
        hits: List[Tuple[int, str]] = []
        candidates = list(self.file_pragmas)
        candidates += list(self.line_pragmas.get(finding.line, ()))
        for index in candidates:
            pragma = self.pragmas[index]
            if finding.code in pragma.codes:
                hits.append((index, finding.code))
            elif "ALL" in pragma.codes:
                hits.append((index, "ALL"))
        return hits

    def is_suppressed(self, finding: Finding) -> bool:
        if "ALL" in self.file_wide or finding.code in self.file_wide:
            return True
        codes = self.by_line.get(finding.line, frozenset())
        return "ALL" in codes or finding.code in codes


def parse_suppressions(source: str) -> Suppressions:
    """Extract every ``reprolint`` pragma from ``source``.

    Line pragmas apply to their own physical line; a pragma on a
    comment-only line also covers the next line, so a finding on a long
    statement can carry its justification above it.
    """
    by_line: Dict[int, Set[str]] = {}
    file_wide: Set[str] = set()
    unjustified: List[int] = []
    pragmas: List[Pragma] = []
    line_pragmas: Dict[int, List[int]] = {}
    file_pragmas: List[int] = []
    lines = source.splitlines()
    for lineno, raw in enumerate(lines, start=1):
        match = _PRAGMA_RE.search(raw)
        if match is None:
            continue
        codes = frozenset(
            code.strip().upper()
            for code in match.group("codes").split(",")
            if code.strip()
        )
        if not codes:
            continue
        why = (match.group("why") or "").strip()
        if not why:
            unjustified.append(lineno)
        kind = match.group(1)
        comment_only = raw.lstrip().startswith("#")
        index = len(pragmas)
        pragmas.append(
            Pragma(
                line=lineno,
                kind=kind,
                codes=tuple(sorted(codes)),
                justified=bool(why),
            )
        )
        if kind == "disable-file":
            if lineno <= _FILE_PRAGMA_WINDOW and comment_only:
                file_wide |= codes
                file_pragmas.append(index)
            else:  # misplaced file pragma degrades to a line pragma
                by_line.setdefault(lineno, set()).update(codes)
                line_pragmas.setdefault(lineno, []).append(index)
            continue
        by_line.setdefault(lineno, set()).update(codes)
        line_pragmas.setdefault(lineno, []).append(index)
        if comment_only:
            by_line.setdefault(lineno + 1, set()).update(codes)
            line_pragmas.setdefault(lineno + 1, []).append(index)
    return Suppressions(
        by_line={line: frozenset(codes) for line, codes in by_line.items()},
        file_wide=frozenset(file_wide),
        unjustified=tuple(unjustified),
        pragmas=tuple(pragmas),
        line_pragmas={
            line: tuple(indices) for line, indices in line_pragmas.items()
        },
        file_pragmas=tuple(file_pragmas),
    )
