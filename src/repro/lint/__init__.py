"""reprolint — domain-aware static analysis for this codebase.

``python -m repro lint [paths...]`` (or the standalone ``tools/reprolint``)
checks the invariants the admission-control math and the discrete-event
simulator rely on but ordinary linters cannot see.  RL001-RL004 are
per-node AST rules; RL006-RL008 run on a per-function CFG + forward
dataflow framework (:mod:`repro.lint.cfg`, :mod:`repro.lint.dataflow`):

========  ==============================================================
RL001     determinism: no wall clock / module-level RNG state in
          simulation packages (route through RandomStreams)
RL002     unit discipline: conversions only through repro.units; no
          magic ``8``/``53``/``1e6`` factors, no ``*_ms`` names holding
          seconds
RL003     float safety: no exact ``==``/``!=`` against floats in the
          math kernels (use the tolerance helpers)
RL004     cache purity: never mutate a value handed out by the delay
          engine's caches/memos
RL005     suppression hygiene: pragmas need a justification and must
          actually suppress something (stale pragmas are flagged)
RL006     exception transactionality: registered transactional scopes
          must not leak partial mutations through a raise
RL007     asyncio atomicity: no read-await-write of shared service
          state without holding a lock across the suspension
RL008     dimension inference: no +,- or comparisons between values
          inferred to hold different dimensions (s / bits / bits-per-s)
========  ==============================================================

Suppress a finding with ``# reprolint: disable=RL00x -- justification``.
See ``docs/static_analysis.md`` for the full catalog and how to add rules.
"""

from __future__ import annotations

from repro.lint.engine import (
    ALL_RULES,
    format_json_report,
    format_report,
    iter_python_files,
    lint_paths,
    lint_source,
    select_rules,
)
from repro.lint.findings import Finding, Pragma, Suppressions, parse_suppressions
from repro.lint.rules import (
    BASE_RULES,
    CachePurityRule,
    DeterminismRule,
    FloatSafetyRule,
    Rule,
    UnitDisciplineRule,
)
from repro.lint.rules_flow import (
    FLOW_RULES,
    AsyncAtomicityRule,
    DimensionRule,
    TransactionalityRule,
)

__all__ = [
    "ALL_RULES",
    "AsyncAtomicityRule",
    "BASE_RULES",
    "CachePurityRule",
    "DeterminismRule",
    "DimensionRule",
    "FLOW_RULES",
    "Finding",
    "FloatSafetyRule",
    "Pragma",
    "Rule",
    "Suppressions",
    "TransactionalityRule",
    "UnitDisciplineRule",
    "format_json_report",
    "format_report",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "parse_suppressions",
    "select_rules",
]
