"""reprolint — domain-aware static analysis for this codebase.

``python -m repro lint [paths...]`` (or the standalone ``tools/reprolint``)
checks the invariants the admission-control math and the discrete-event
simulator rely on but ordinary linters cannot see:

========  ==============================================================
RL001     determinism: no wall clock / module-level RNG state in
          simulation packages (route through RandomStreams)
RL002     unit discipline: conversions only through repro.units; no
          magic ``8``/``53``/``1e6`` factors, no ``*_ms`` names holding
          seconds
RL003     float safety: no exact ``==``/``!=`` against floats in the
          math kernels (use the tolerance helpers)
RL004     cache purity: never mutate a value handed out by the delay
          engine's caches/memos
========  ==============================================================

Suppress a finding with ``# reprolint: disable=RL00x -- justification``.
See ``docs/static_analysis.md`` for the full catalog and how to add rules.
"""

from __future__ import annotations

from repro.lint.engine import (
    format_report,
    iter_python_files,
    lint_paths,
    lint_source,
    select_rules,
)
from repro.lint.findings import Finding, Suppressions, parse_suppressions
from repro.lint.rules import (
    ALL_RULES,
    CachePurityRule,
    DeterminismRule,
    FloatSafetyRule,
    Rule,
    UnitDisciplineRule,
)

__all__ = [
    "ALL_RULES",
    "CachePurityRule",
    "DeterminismRule",
    "Finding",
    "FloatSafetyRule",
    "Rule",
    "Suppressions",
    "UnitDisciplineRule",
    "format_report",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "parse_suppressions",
    "select_rules",
]
