"""Per-function control-flow graphs for the flow-aware lint rules.

The flow rules (RL006-RL008) need path sensitivity the per-node AST
walks cannot give: "a mutation *followed by* a raise", "a read and a
write *separated by* an ``await``".  This module lowers one function
body into a graph of basic blocks whose entries are :class:`Event`
records at statement granularity.

Design points that matter to the analyses built on top:

* **Exception edges carry pre-statement state.**  Inside a ``try`` body
  every statement opens its own block, and the block records the
  handler entries in ``Block.except_targets``.  The dataflow driver
  propagates the block's *IN* state (not its OUT state) along those
  edges, encoding the domain assumption that an individual statement
  either completes or raises before its effect lands.  This is exactly
  what makes the CAC rollback idiom (``allocate`` in a ``try``, release
  the *prior* allocation in the handler) analyzable without false
  positives.
* **Loops close with back edges**, so facts established in iteration
  *N* are visible at the loop head for iteration *N+1* — the pre-PR-9
  ``connect_switches`` bug (mutate in iteration 1, raise in iteration
  2) is only reachable through that edge.
* ``with``/``async with`` produce paired ``with_enter``/``with_exit``
  events so lock-region tracking sees both boundaries; ``async`` nodes
  (``await``, ``async for``, ``async with``) stay inside their events
  for the atomicity rule to inspect.

Known (documented) approximations: ``break``/``continue`` jump straight
to their loop targets even across an intervening ``finally``, and a
``return`` routes through at most the innermost ``finally``.  Both are
sound for the accumulate-join analyses used here (they only *add*
paths elsewhere, never hide one).
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Event kinds, in the order an executing statement produces them.
EVENT_STMT = "stmt"
EVENT_TEST = "test"
EVENT_WITH_ENTER = "with_enter"
EVENT_WITH_EXIT = "with_exit"


@dataclasses.dataclass(frozen=True)
class Event:
    """One analyzable step inside a block."""

    kind: str
    node: ast.AST


@dataclasses.dataclass
class Block:
    """A straight-line run of events with explicit successor edges."""

    block_id: int
    events: List[Event] = dataclasses.field(default_factory=list)
    #: Normal-flow successors (OUT state propagates here).
    succ: List[int] = dataclasses.field(default_factory=list)
    #: Exception-flow successors (IN state propagates here): the handler
    #: and ``finally`` entries protecting this block.
    except_targets: List[int] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class CFG:
    """The control-flow graph of one function."""

    func: FunctionNode
    blocks: Dict[int, Block]
    entry: int
    exit_id: int

    def block_ids(self) -> List[int]:
        """Block ids in creation (approximately source) order."""
        return sorted(self.blocks)

    def predecessors(self) -> Dict[int, List[int]]:
        preds: Dict[int, List[int]] = {bid: [] for bid in self.blocks}
        for block in self.blocks.values():
            for target in block.succ:
                preds[target].append(block.block_id)
            for target in block.except_targets:
                preds[target].append(block.block_id)
        return preds


class _Builder:
    def __init__(self, func: FunctionNode) -> None:
        self.func = func
        self.blocks: Dict[int, Block] = {}
        self._next_id = 0
        self.entry = self._new_block(protected=False)
        self.exit_id = self._new_block(protected=False)
        self.current: Optional[int] = self.entry
        #: (continue_target, break_target) per enclosing loop.
        self._loops: List[Tuple[int, int]] = []
        #: Stack of handler-entry lists for enclosing ``try`` regions.
        self._handlers: List[List[int]] = []
        #: Stack of ``finally`` entry blocks (for return routing).
        self._finallies: List[int] = []

    # -- plumbing ------------------------------------------------------

    def _new_block(self, protected: bool = True) -> int:
        block = Block(block_id=self._next_id)
        self._next_id += 1
        if protected:
            block.except_targets = self._protection()
        self.blocks[block.block_id] = block
        return block.block_id

    def _protection(self) -> List[int]:
        targets: List[int] = []
        for frame in getattr(self, "_handlers", []):
            for target in frame:
                if target not in targets:
                    targets.append(target)
        return targets

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succ:
            self.blocks[src].succ.append(dst)

    def _ensure_current(self) -> int:
        if self.current is None:  # unreachable code still gets a block
            self.current = self._new_block()
        return self.current

    def _start_block(self) -> int:
        """Seal the current block and chain a fresh successor."""
        old = self._ensure_current()
        new = self._new_block()
        self._edge(old, new)
        self.current = new
        return new

    def _append(self, event: Event) -> None:
        current = self._ensure_current()
        if self._handlers and self.blocks[current].events:
            # Per-statement blocks inside try regions: the handler must
            # receive the state from *before* each statement.
            current = self._start_block()
        self.blocks[current].events.append(event)

    # -- statement dispatch --------------------------------------------

    def build(self) -> CFG:
        self._visit_body(self.func.body)
        if self.current is not None:
            self._edge(self.current, self.exit_id)
        return CFG(
            func=self.func,
            blocks=self.blocks,
            entry=self.entry,
            exit_id=self.exit_id,
        )

    def _visit_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._visit(stmt)

    def _visit(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.If):
            self._visit_if(stmt)
        elif isinstance(stmt, (ast.While,)):
            self._visit_while(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_for(stmt)
        elif isinstance(stmt, ast.Try):
            self._visit_try(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._visit_with(stmt)
        elif isinstance(stmt, ast.Raise):
            self._visit_raise(stmt)
        elif isinstance(stmt, ast.Return):
            self._visit_return(stmt)
        elif isinstance(stmt, ast.Break):
            self._visit_break_continue(stmt, is_break=True)
        elif isinstance(stmt, ast.Continue):
            self._visit_break_continue(stmt, is_break=False)
        elif isinstance(stmt, ast.Match):
            self._visit_match(stmt)
        else:
            # Simple statements — including nested function/class
            # definitions, which the per-function analyses treat as
            # opaque values.
            self._append(Event(EVENT_STMT, stmt))

    def _visit_if(self, stmt: ast.If) -> None:
        self._append(Event(EVENT_TEST, stmt.test))
        head = self._ensure_current()
        after = self._new_block()

        then_block = self._new_block()
        self._edge(head, then_block)
        self.current = then_block
        self._visit_body(stmt.body)
        if self.current is not None:
            self._edge(self.current, after)

        if stmt.orelse:
            else_block = self._new_block()
            self._edge(head, else_block)
            self.current = else_block
            self._visit_body(stmt.orelse)
            if self.current is not None:
                self._edge(self.current, after)
        else:
            self._edge(head, after)
        self.current = after

    def _visit_while(self, stmt: ast.While) -> None:
        prev = self._ensure_current()
        head = self._new_block()
        self._edge(prev, head)
        self.blocks[head].events.append(Event(EVENT_TEST, stmt.test))
        after = self._new_block()

        body = self._new_block()
        self._edge(head, body)
        self._loops.append((head, after))
        self.current = body
        self._visit_body(stmt.body)
        if self.current is not None:
            self._edge(self.current, head)
        self._loops.pop()

        if stmt.orelse:
            orelse = self._new_block()
            self._edge(head, orelse)
            self.current = orelse
            self._visit_body(stmt.orelse)
            if self.current is not None:
                self._edge(self.current, after)
        else:
            self._edge(head, after)
        self.current = after

    def _visit_for(self, stmt: Union[ast.For, ast.AsyncFor]) -> None:
        prev = self._ensure_current()
        head = self._new_block()
        self._edge(prev, head)
        self.blocks[head].events.append(Event(EVENT_TEST, stmt))
        after = self._new_block()

        body = self._new_block()
        self._edge(head, body)
        self._loops.append((head, after))
        self.current = body
        self._visit_body(stmt.body)
        if self.current is not None:
            self._edge(self.current, head)
        self._loops.pop()

        if stmt.orelse:
            orelse = self._new_block()
            self._edge(head, orelse)
            self.current = orelse
            self._visit_body(stmt.orelse)
            if self.current is not None:
                self._edge(self.current, after)
        else:
            self._edge(head, after)
        self.current = after

    def _visit_with(self, stmt: Union[ast.With, ast.AsyncWith]) -> None:
        self._append(Event(EVENT_WITH_ENTER, stmt))
        self._visit_body(stmt.body)
        if self.current is not None:
            self._append(Event(EVENT_WITH_EXIT, stmt))

    def _visit_raise(self, stmt: ast.Raise) -> None:
        self._append(Event(EVENT_STMT, stmt))
        block = self._ensure_current()
        targets = self._protection()
        if targets:
            for target in targets:
                self._edge(block, target)
        else:
            self._edge(block, self.exit_id)
        self.current = None

    def _visit_return(self, stmt: ast.Return) -> None:
        self._append(Event(EVENT_STMT, stmt))
        block = self._ensure_current()
        if self._finallies:
            self._edge(block, self._finallies[-1])
        else:
            self._edge(block, self.exit_id)
        self.current = None

    def _visit_break_continue(self, stmt: ast.stmt, is_break: bool) -> None:
        self._append(Event(EVENT_STMT, stmt))
        block = self._ensure_current()
        if self._loops:
            head, after = self._loops[-1]
            self._edge(block, after if is_break else head)
        else:  # malformed code; degrade to exit
            self._edge(block, self.exit_id)
        self.current = None

    def _visit_match(self, stmt: ast.Match) -> None:
        self._append(Event(EVENT_TEST, stmt.subject))
        head = self._ensure_current()
        after = self._new_block()
        for case in stmt.cases:
            case_block = self._new_block()
            self._edge(head, case_block)
            self.current = case_block
            self._visit_body(case.body)
            if self.current is not None:
                self._edge(self.current, after)
        self._edge(head, after)  # no case may match
        self.current = after

    def _visit_try(self, stmt: ast.Try) -> None:
        finally_entry: Optional[int] = None
        if stmt.finalbody:
            finally_entry = self._new_block()

        handler_entries: List[int] = []
        for _handler in stmt.handlers:
            handler_entries.append(self._new_block())

        after = self._new_block()
        exits = after if finally_entry is None else finally_entry

        # Body: protected by the handlers (and the finally, for
        # exceptions no handler matches).
        body_targets = list(handler_entries)
        if finally_entry is not None:
            body_targets.append(finally_entry)
        prev = self._ensure_current()
        self._handlers.append(body_targets)
        if finally_entry is not None:
            self._finallies.append(finally_entry)
        body_start = self._new_block()
        self._edge(prev, body_start)
        self.current = body_start
        self._visit_body(stmt.body)
        body_end = self.current
        self._handlers.pop()

        # else: runs after a clean body; this try's handlers no longer
        # protect it, but its finally still does.
        if finally_entry is not None:
            self._handlers.append([finally_entry])
        if stmt.orelse:
            if body_end is not None:
                orelse_start = self._new_block()
                self._edge(body_end, orelse_start)
                self.current = orelse_start
                self._visit_body(stmt.orelse)
                if self.current is not None:
                    self._edge(self.current, exits)
        elif body_end is not None:
            self._edge(body_end, exits)

        # Handlers: protected by this try's finally plus outer frames.
        # (Their entry blocks were created before the finally frame was
        # pushed, so refresh the protection now.)
        for handler, entry in zip(stmt.handlers, handler_entries):
            self.blocks[entry].except_targets = self._protection()
            self.current = entry
            self._visit_body(handler.body)
            if self.current is not None:
                self._edge(self.current, exits)
        if finally_entry is not None:
            self._handlers.pop()
            self._finallies.pop()

        # finally: runs on every path; afterwards either continue
        # normally or re-raise toward the outer protection.
        if finally_entry is not None:
            self.current = finally_entry
            self._visit_body(stmt.finalbody)
            if self.current is not None:
                self._edge(self.current, after)
                outer = self._protection()
                if outer:
                    for target in outer:
                        self._edge(self.current, target)
                else:
                    self._edge(self.current, self.exit_id)
        self.current = after


def build_cfg(func: FunctionNode) -> CFG:
    """The control-flow graph of ``func``'s body (not its nested defs)."""
    return _Builder(func).build()


def function_defs(tree: ast.AST) -> List[FunctionNode]:
    """Every (async) function definition in ``tree``, outermost first."""
    out: List[FunctionNode] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append(node)
    out.sort(key=lambda fn: (fn.lineno, fn.col_offset))
    return out


def contains_await(node: ast.AST) -> bool:
    """Does ``node`` contain an ``await`` outside nested functions?"""
    for child in walk_in_function(node):
        if isinstance(child, ast.Await):
            return True
    return False


def walk_in_function(node: ast.AST) -> List[ast.AST]:
    """Like :func:`ast.walk` but stopping at nested function/class defs."""
    out: List[ast.AST] = []
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        out.append(current)
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
            ):
                continue
            stack.append(child)
    return out
