"""Flow-aware reprolint rules (RL006-RL008).

These rules run on the :mod:`repro.lint.cfg` /
:mod:`repro.lint.dataflow` framework rather than on bare AST walks:

RL006 (transactionality)
    In a *registered transactional scope* — topology mutators, the CAC
    ledger paths, journal writes, service state rollback paths — no
    path may mutate ``self``/shared state and subsequently hit an
    explicit ``raise`` without rolling the mutation back.  This is the
    ``connect_switches`` bug class from PR 9: the first loop iteration
    attached a link, the second raised, and a half-connected backbone
    survived the exception.

RL007 (asyncio atomicity)
    In ``repro.service``, shared ``self`` state read before an
    ``await`` and written after it is a lost-update race unless a lock
    is held across the suspension — every other task on the loop can
    run in between.  The rule tracks the held-lock set as dataflow
    state (``async with <lock>``, manual ``acquire``/``release``) and
    flags writes whose supporting read went stale across an unguarded
    ``await``.

RL008 (dimension inference)
    Flow-sensitive dimension tracking (seconds, bits, bits/s,
    dimensionless) seeded from :mod:`repro.units` constants/helpers and
    name suffixes, propagated through assignment and arithmetic.
    Definite cross-dimension ``+``/``-``/comparisons are flagged;
    RL002's lexical checks stay on as the fallback where inference is
    inconclusive (magic literals carry no inferable dimension).

New transactional scopes are declared either in
:data:`TRANSACTIONAL_SCOPES` or inline with a ``# reprolint:
transactional`` marker comment on the ``def`` line (see
CONTRIBUTING.md).
"""

from __future__ import annotations

import ast
import re
from pathlib import PurePosixPath
from typing import (
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.lint.cfg import (
    EVENT_STMT,
    EVENT_TEST,
    EVENT_WITH_ENTER,
    EVENT_WITH_EXIT,
    FunctionNode,
    build_cfg,
    contains_await,
    function_defs,
    walk_in_function,
)
from repro.lint.dataflow import Analysis, Event, replay, run_forward
from repro.lint.findings import Finding
from repro.lint.rules import Rule, _flatten_targets, _module_relpath

# ---------------------------------------------------------------------------
# Shared expression helpers
# ---------------------------------------------------------------------------


def dotted_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """The attribute chain of ``node`` with subscripts erased.

    ``self.topology.rings[rid]`` -> ``("self", "topology", "rings")``;
    returns None when the chain is not rooted at a plain name.
    """
    parts: List[str] = []
    current = node
    while True:
        if isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        elif isinstance(current, ast.Subscript):
            current = current.value
        elif isinstance(current, ast.Name):
            parts.append(current.id)
            return tuple(reversed(parts))
        else:
            return None


def chain_key(chain: Sequence[str]) -> str:
    return ".".join(chain)


def _same_family(a: str, b: str) -> bool:
    """Do two dotted keys name the same object or a part of it?"""
    return a == b or a.startswith(b + ".") or b.startswith(a + ".")


def _mutation_target_key(target: ast.AST) -> Optional[Tuple[str, ...]]:
    """The chain mutated by storing/deleting ``target`` (None for plain
    local rebinds, which mutate nothing shared)."""
    if isinstance(target, ast.Attribute):
        return dotted_chain(target)
    if isinstance(target, ast.Subscript):
        return dotted_chain(target.value)
    return None


#: Method names that mutate their receiver, from the domain's own
#: vocabulary (ledgers, topology construction, container ops).
MUTATOR_METHODS = frozenset(
    {
        "add",
        "add_edge",
        "add_node",
        "adopt_record",
        "allocate",
        "append",
        "attach_link",
        "attach_uplink",
        "clear",
        "commit_admit",
        "discard",
        "extend",
        "fail_link",
        "fail_node",
        "forget_record",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "put",
        "rebalance",
        "remove",
        "remove_edge",
        "remove_node",
        "restore",
        "restore_link",
        "restore_node",
        "restore_record",
        "setdefault",
        "truncate",
        "update",
        "write",
    }
)

#: Method names that *undo* prior mutations of their receiver.
ROLLBACK_METHODS = frozenset({"release", "rollback"})


# ---------------------------------------------------------------------------
# RL006 — exception transactionality
# ---------------------------------------------------------------------------

#: Registered transactional scopes: module relpath -> function names whose
#: state transitions must be all-or-nothing.  Add new scopes here or mark
#: the def line with ``# reprolint: transactional``.
TRANSACTIONAL_SCOPES: Dict[str, FrozenSet[str]] = {
    "repro/network/topology.py": frozenset(
        {
            "add_ring",
            "add_host",
            "add_switch",
            "add_device",
            "connect_switches",
            "fail_link",
            "restore_link",
            "fail_node",
            "restore_node",
        }
    ),
    "repro/core/cac.py": frozenset({"_decide", "restore", "release"}),
    "repro/fddi/ring.py": frozenset({"allocate", "release"}),
    "repro/service/journal.py": frozenset(
        {"open_fresh", "open_for_append", "append", "write_snapshot"}
    ),
    "repro/service/shard.py": frozenset(
        {"_merge", "commit_admit", "restore_record", "release", "rebalance"}
    ),
    "repro/service/server.py": frozenset({"_replay"}),
}

_TRANSACTIONAL_MARKER = "# reprolint: transactional"

#: RL006 state: (mutation facts, derived-name set).  A fact is
#: ``(key, line)`` — an uncommitted mutation of the object named by
#: ``key``; ``derived`` holds local names aliasing self-/param-rooted
#: objects so mutations through them are tracked too.
_TxState = Tuple[FrozenSet[Tuple[str, int]], FrozenSet[str]]


class _TxAnalysis(Analysis[_TxState]):
    def __init__(self, func: FunctionNode) -> None:
        args = func.args
        params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            params.append(args.vararg.arg)
        if args.kwarg:
            params.append(args.kwarg.arg)
        self._params = frozenset(params)

    def initial_state(self) -> _TxState:
        return (frozenset(), self._params)

    def join(self, a: _TxState, b: _TxState) -> _TxState:
        return (a[0] | b[0], a[1] | b[1])

    # -- events --------------------------------------------------------

    def transfer(self, state: _TxState, event: Event) -> _TxState:
        facts, derived = state
        node = event.node
        if event.kind == EVENT_TEST and isinstance(node, (ast.For, ast.AsyncFor)):
            # Iterating a derived container yields derived elements.
            iter_chain = dotted_chain(node.iter) or self._call_chain(node.iter)
            if iter_chain is not None and self._is_derived(iter_chain, derived):
                derived = derived | self._target_names(node.target)
            return (facts, derived)
        if event.kind != EVENT_STMT:
            return (facts, derived)

        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            facts, derived = self._apply_assign(node, facts, derived)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                chain = _mutation_target_key(target)
                if chain is not None and self._is_derived(chain, derived):
                    facts = facts | {(chain_key(chain), node.lineno)}
        facts = self._apply_calls(node, facts, derived)
        return (facts, derived)

    # -- helpers -------------------------------------------------------

    @staticmethod
    def _is_derived(chain: Sequence[str], derived: FrozenSet[str]) -> bool:
        return bool(chain) and (chain[0] == "self" or chain[0] in derived)

    @staticmethod
    def _call_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
        """The receiver chain of a (possibly awaited) call expression."""
        if isinstance(node, ast.Await):
            node = node.value
        if isinstance(node, ast.Call):
            return dotted_chain(node.func)
        return None

    @staticmethod
    def _target_names(target: ast.AST) -> FrozenSet[str]:
        names = set()
        for element in _flatten_targets(target):
            if isinstance(element, ast.Name):
                names.add(element.id)
        return frozenset(names)

    def _apply_assign(
        self,
        node: Union[ast.Assign, ast.AnnAssign, ast.AugAssign],
        facts: FrozenSet[Tuple[str, int]],
        derived: FrozenSet[str],
    ) -> Tuple[FrozenSet[Tuple[str, int]], FrozenSet[str]]:
        targets: List[ast.AST]
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        else:
            targets = [node.target]
        for target in targets:
            for element in _flatten_targets(target):
                chain = _mutation_target_key(element)
                if chain is not None and self._is_derived(chain, derived):
                    facts = facts | {(chain_key(chain), node.lineno)}
        value = node.value
        if value is not None and isinstance(node, (ast.Assign, ast.AnnAssign)):
            source = dotted_chain(value) or self._call_chain(value)
            if source is not None and self._is_derived(source, derived):
                for target in targets:
                    derived = derived | self._target_names(target)
        return facts, derived

    def _apply_calls(
        self,
        node: ast.AST,
        facts: FrozenSet[Tuple[str, int]],
        derived: FrozenSet[str],
    ) -> FrozenSet[Tuple[str, int]]:
        for child in walk_in_function(node):
            if not isinstance(child, ast.Call):
                continue
            func = child.func
            if not isinstance(func, ast.Attribute):
                continue
            base = dotted_chain(func.value)
            if base is None or not self._is_derived(base, derived):
                continue
            key = chain_key(base)
            if func.attr in ROLLBACK_METHODS:
                facts = frozenset(
                    f for f in facts if not _same_family(f[0], key)
                )
            elif func.attr in MUTATOR_METHODS:
                facts = facts | {(key, child.lineno)}
        return facts


class TransactionalityRule(Rule):
    """RL006 — mutations must not leak through an exception path.

    A registered transactional function may raise freely *before* its
    first state mutation (validate-then-mutate) or after undoing its
    partial work (``release``/``rollback`` on the mutated object); any
    explicit ``raise`` reachable with live mutation facts is flagged.
    """

    code = "RL006"
    name = "transactionality"
    description = (
        "in registered transactional scopes, forbid paths that mutate "
        "self/shared state and later raise without rolling back"
    )
    autofix_hint = (
        "validate every input before the first mutation, or release/"
        "rollback the partial state in the exception path"
    )

    def applies_to(self, path: PurePosixPath) -> bool:
        return _module_relpath(path) is not None

    def check(
        self,
        tree: ast.Module,
        source: str,
        path: str,
        scope_path: Optional[str] = None,
    ) -> List[Finding]:
        where = (scope_path or path).replace("\\", "/")
        rel = _module_relpath(PurePosixPath(where))
        registered: FrozenSet[str] = frozenset()
        if rel is not None:
            registered = TRANSACTIONAL_SCOPES.get(str(rel), frozenset())
        lines = source.splitlines()
        findings: List[Finding] = []
        for func in function_defs(tree):
            if func.name not in registered and not self._marked(func, lines):
                continue
            findings.extend(self._check_function(func, path))
        return findings

    @staticmethod
    def _marked(func: FunctionNode, lines: List[str]) -> bool:
        if 1 <= func.lineno <= len(lines):
            return _TRANSACTIONAL_MARKER in lines[func.lineno - 1]
        return False

    def _check_function(self, func: FunctionNode, path: str) -> List[Finding]:
        cfg = build_cfg(func)
        analysis = _TxAnalysis(func)
        result = run_forward(cfg, analysis)
        findings: List[Finding] = []
        seen: Set[int] = set()

        def visit(state: _TxState, event: Event) -> None:
            node = event.node
            if event.kind != EVENT_STMT or not isinstance(node, ast.Raise):
                return
            facts = state[0]
            if not facts or id(node) in seen:
                return
            seen.add(id(node))
            ordered = sorted(facts, key=lambda f: (f[1], f[0]))
            first_key, first_line = ordered[0]
            keys = sorted({key for key, _ in ordered})
            findings.append(
                self.finding(
                    path,
                    node,
                    f"raise reachable with {len(ordered)} uncommitted "
                    f"mutation(s) of {', '.join(keys)} (earliest at line "
                    f"{first_line}: {first_key}) in transactional scope "
                    f"'{func.name}'",
                )
            )

        replay(cfg, result, analysis, visit)
        return findings


# ---------------------------------------------------------------------------
# RL007 — asyncio atomicity
# ---------------------------------------------------------------------------

#: Attribute-name fragments identifying synchronization primitives;
#: reads/writes of these are coordination, not shared data.
_SYNC_ATTR_RE = re.compile(r"lock|mutex|sem|wake|event|cond|future")
#: Chain segments that *are* a lock (for held-set tracking).
_LOCK_NAME_RE = re.compile(r"(lock|mutex|sem|semaphore)$")

#: RL007 state: (held locks, read facts).  ``locks`` is a must-hold set
#: (joined by intersection); a fact ``(key, line, stale)`` records a
#: read of shared ``self`` state, marked stale once an ``await``
#: suspends with no lock held at all.
_AtomState = Tuple[FrozenSet[str], FrozenSet[Tuple[str, int, bool]]]


def _is_lock_chain(chain: Optional[Sequence[str]]) -> bool:
    return chain is not None and bool(
        _LOCK_NAME_RE.search(chain[-1].lower())
    )


def _is_sync_chain(chain: Sequence[str]) -> bool:
    return any(_SYNC_ATTR_RE.search(part.lower()) for part in chain[1:])


class _AtomAnalysis(Analysis[_AtomState]):
    def initial_state(self) -> _AtomState:
        return (frozenset(), frozenset())

    def join(self, a: _AtomState, b: _AtomState) -> _AtomState:
        return (a[0] & b[0], a[1] | b[1])

    # -- event decomposition -------------------------------------------

    def transfer(self, state: _AtomState, event: Event) -> _AtomState:
        locks, facts = state
        node = event.node
        if event.kind == EVENT_WITH_ENTER:
            if isinstance(node, ast.AsyncWith):
                locks, facts = self._suspend(locks, facts)
            for item in node.items:  # type: ignore[attr-defined]
                chain = dotted_chain(item.context_expr)
                if _is_lock_chain(chain):
                    locks = locks | {chain_key(chain)}  # type: ignore[arg-type]
            return (locks, facts)
        if event.kind == EVENT_WITH_EXIT:
            for item in node.items:  # type: ignore[attr-defined]
                chain = dotted_chain(item.context_expr)
                if _is_lock_chain(chain):
                    locks = locks - {chain_key(chain)}  # type: ignore[arg-type]
            return (locks, facts)

        # Generic statement/test: reads, then suspension, then writes —
        # the order the interpreter visits them in the common patterns.
        for key, line in self._reads(node):
            facts = facts | {(key, line, False)}
        if isinstance(node, ast.AsyncFor) or contains_await(node):
            locks, facts = self._suspend(locks, facts)
        for acquired in self._lock_acquires(node):
            locks = locks | {acquired}
        for released in self._lock_releases(node):
            locks = locks - {released}
        for key, _node in self._writes(node):
            facts = frozenset(f for f in facts if not _same_family(f[0], key))
        return (locks, facts)

    @staticmethod
    def _suspend(
        locks: FrozenSet[str], facts: FrozenSet[Tuple[str, int, bool]]
    ) -> Tuple[FrozenSet[str], FrozenSet[Tuple[str, int, bool]]]:
        """An ``await`` ran.  With no lock held at all, every live read
        goes stale; with any lock held we assume a locking protocol
        guards the state it reads (the service's lock-coupling
        structure->shard handoff)."""
        if locks:
            return locks, facts
        return locks, frozenset((key, line, True) for key, line, _ in facts)

    # -- node scanning -------------------------------------------------

    @staticmethod
    def _reads(node: ast.AST) -> List[Tuple[str, int]]:
        """Shared-state reads: ``self``-rooted attribute chains in Load
        context, excluding sync primitives, bare-method calls and bound-
        method references."""
        out: List[Tuple[str, int]] = []
        nodes = walk_in_function(node)
        call_funcs = {
            id(child.func) for child in nodes if isinstance(child, ast.Call)
        }
        # Only maximal chains count: ``self.a.b`` is one read of
        # ``self.a.b``, not also a read of ``self.a`` (subscripted
        # containers like ``self.a.b[k]`` keep ``self.a.b`` maximal).
        sub_chains = {
            id(child.value)
            for child in nodes
            if isinstance(child, ast.Attribute)
        }
        for child in nodes:
            if not isinstance(child, ast.Attribute):
                continue
            if not isinstance(child.ctx, ast.Load) or id(child) in sub_chains:
                continue
            chain = dotted_chain(child)
            if chain is None or chain[0] != "self" or len(chain) < 2:
                continue
            if _is_sync_chain(chain):
                continue
            if id(child) in call_funcs:
                # ``self.method(...)`` is opaque; a deeper chain like
                # ``self.state.route_of(...)`` reads ``self.state``.
                if len(chain) <= 2:
                    continue
                out.append((chain_key(chain[:-1]), child.lineno))
                continue
            if chain[-1] in MUTATOR_METHODS or chain[-1] in ROLLBACK_METHODS:
                continue  # bound-method reference (e.g. a callback)
            out.append((chain_key(chain), child.lineno))
        return sorted(set(out))

    @staticmethod
    def _writes(node: ast.AST) -> List[Tuple[str, ast.AST]]:
        """Shared-state writes: stores/deletes through ``self``-rooted
        chains and mutator-method calls on them."""
        out: List[Tuple[str, ast.AST]] = []
        for child in walk_in_function(node):
            if isinstance(child, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    list(child.targets)
                    if isinstance(child, ast.Assign)
                    else [child.target]
                )
                for target in targets:
                    for element in _flatten_targets(target):
                        chain = None
                        if isinstance(element, ast.Attribute):
                            chain = dotted_chain(element)
                        elif isinstance(element, ast.Subscript):
                            chain = dotted_chain(element.value)
                        if (
                            chain is None
                            or chain[0] != "self"
                            or len(chain) < 2
                            or _is_sync_chain(chain)
                        ):
                            continue
                        out.append((chain_key(chain), child))
            elif isinstance(child, ast.Delete):
                for target in child.targets:
                    chain = _mutation_target_key(target)
                    if (
                        chain is not None
                        and chain[0] == "self"
                        and len(chain) >= 2
                        and not _is_sync_chain(chain)
                    ):
                        out.append((chain_key(chain), child))
            elif isinstance(child, ast.Call) and isinstance(
                child.func, ast.Attribute
            ):
                if child.func.attr not in MUTATOR_METHODS:
                    continue
                base = dotted_chain(child.func.value)
                if (
                    base is None
                    or base[0] != "self"
                    or len(base) < 2
                    or _is_sync_chain(base)
                ):
                    continue
                out.append((chain_key(base), child))
        return out

    @staticmethod
    def _lock_acquires(node: ast.AST) -> List[str]:
        out = []
        for child in walk_in_function(node):
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr == "acquire"
            ):
                chain = dotted_chain(child.func.value)
                if _is_lock_chain(chain):
                    out.append(chain_key(chain))  # type: ignore[arg-type]
        return out

    @staticmethod
    def _lock_releases(node: ast.AST) -> List[str]:
        out = []
        for child in walk_in_function(node):
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr == "release"
            ):
                chain = dotted_chain(child.func.value)
                if _is_lock_chain(chain):
                    out.append(chain_key(chain))  # type: ignore[arg-type]
        return out


class AsyncAtomicityRule(Rule):
    """RL007 — reads-then-writes of shared service state across ``await``.

    An ``await`` with no lock held yields the event loop; state read
    before it can be changed by any other task before the write lands.
    """

    code = "RL007"
    name = "async-atomicity"
    description = (
        "in repro.service, forbid writing shared self state whose "
        "supporting read crossed an unguarded await"
    )
    autofix_hint = (
        "hold the guarding lock across the read and write, or claim the "
        "value into a local (write self before the await) and use that"
    )

    def applies_to(self, path: PurePosixPath) -> bool:
        rel = _module_relpath(path)
        return rel is not None and rel.parts[:2] == ("repro", "service")

    def check(
        self,
        tree: ast.Module,
        source: str,
        path: str,
        scope_path: Optional[str] = None,
    ) -> List[Finding]:
        findings: List[Finding] = []
        for func in function_defs(tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            findings.extend(self._check_function(func, path))
        return findings

    def _check_function(self, func: ast.AsyncFunctionDef, path: str) -> List[Finding]:
        cfg = build_cfg(func)
        analysis = _AtomAnalysis()
        result = run_forward(cfg, analysis)
        findings: List[Finding] = []
        seen: Set[Tuple[int, str]] = set()

        def visit(state: _AtomState, event: Event) -> None:
            if event.kind in (EVENT_WITH_ENTER, EVENT_WITH_EXIT):
                return
            _locks, facts = state
            # Reads recorded by this very statement are not yet stale;
            # only prior facts can flag its writes.
            for key, write_node in _AtomAnalysis._writes(event.node):
                stale = sorted(
                    (line, fkey)
                    for fkey, line, is_stale in facts
                    if is_stale and _same_family(fkey, key)
                )
                if not stale:
                    continue
                dedup = (id(write_node), key)
                if dedup in seen:
                    continue
                seen.add(dedup)
                line, fkey = stale[0]
                findings.append(
                    self.finding(
                        path,
                        write_node,
                        f"write to {key} after reading {fkey} at line "
                        f"{line} across an await with no lock held "
                        f"(async '{func.name}')",
                    )
                )

        replay(cfg, result, analysis, visit)
        return findings


# ---------------------------------------------------------------------------
# RL008 — dimension inference
# ---------------------------------------------------------------------------

DIM_TIME = "seconds"
DIM_DATA = "bits"
DIM_RATE = "bits/s"
DIM_SCALAR = "dimensionless"
DIM_UNKNOWN = "?"

_DEFINITE = (DIM_TIME, DIM_DATA, DIM_RATE)

#: repro.units constants -> dimension.
CONST_DIM: Dict[str, str] = {
    "KBIT": DIM_DATA,
    "MBIT": DIM_DATA,
    "GBIT": DIM_DATA,
    "BYTE": DIM_DATA,
    "KBYTE": DIM_DATA,
    "CELL_BYTES": DIM_DATA,
    "CELL_PAYLOAD_BYTES": DIM_DATA,
    "CELL_BITS": DIM_DATA,
    "CELL_PAYLOAD_BITS": DIM_DATA,
    "FDDI_MAX_FRAME_BYTES": DIM_DATA,
    "MS": DIM_TIME,
    "US": DIM_TIME,
    "NS": DIM_TIME,
    "MS_PER_S": DIM_SCALAR,
    "US_PER_S": DIM_SCALAR,
}

#: repro.units helpers -> dimension of their return value.
HELPER_DIM: Dict[str, str] = {
    "mbps": DIM_RATE,
    "kbps": DIM_RATE,
    "milliseconds": DIM_TIME,
    "microseconds": DIM_TIME,
    "seconds_to_ms": DIM_TIME,
    "bytes_to_bits": DIM_DATA,
    "bits_to_bytes": DIM_DATA,
}

#: Name suffixes -> promised dimension (longest suffix wins).
SUFFIX_DIM: Dict[str, str] = {
    "_s": DIM_TIME,
    "_sec": DIM_TIME,
    "_secs": DIM_TIME,
    "_seconds": DIM_TIME,
    "_ms": DIM_TIME,
    "_us": DIM_TIME,
    "_ns": DIM_TIME,
    "_delay": DIM_TIME,
    "_deadline": DIM_TIME,
    "_bits": DIM_DATA,
    "_bytes": DIM_DATA,
    "_bps": DIM_RATE,
}

#: Whole names with a conventional dimension in this codebase.
EXACT_NAME_DIM: Dict[str, str] = {
    "ttrt": DIM_TIME,
    "deadline": DIM_TIME,
    "latency": DIM_TIME,
    "timeout": DIM_TIME,
    "propagation_delay": DIM_TIME,
    "bandwidth": DIM_RATE,
    "rate": DIM_RATE,
}

_PASSTHROUGH_CALLS = frozenset({"abs", "float", "min", "max", "sum"})


def _join_dim(a: str, b: str) -> str:
    if a == b:
        return a
    return DIM_UNKNOWN


def seed_dim(name: str) -> str:
    """The dimension a bare name promises by convention, if any."""
    lowered = name.lower()
    if lowered in EXACT_NAME_DIM:
        return EXACT_NAME_DIM[lowered]
    best: Optional[str] = None
    for suffix, dim in SUFFIX_DIM.items():
        if lowered.endswith(suffix):
            if best is None or len(suffix) > len(best):
                best = suffix
    if best is not None:
        return SUFFIX_DIM[best]
    return DIM_UNKNOWN


#: RL008 state: sorted (name, dimension) pairs for local names.
_DimState = Tuple[Tuple[str, str], ...]


def _env_of(state: _DimState) -> Dict[str, str]:
    return dict(state)


def _state_of(env: Dict[str, str]) -> _DimState:
    return tuple(sorted(env.items()))


class _DimAnalysis(Analysis[_DimState]):
    def __init__(self, func: FunctionNode) -> None:
        env: Dict[str, str] = {}
        args = func.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            dim = seed_dim(arg.arg)
            if dim != DIM_UNKNOWN:
                env[arg.arg] = dim
        self._initial = _state_of(env)

    def initial_state(self) -> _DimState:
        return self._initial

    def join(self, a: _DimState, b: _DimState) -> _DimState:
        env_a, env_b = _env_of(a), _env_of(b)
        out: Dict[str, str] = {}
        for name in set(env_a) | set(env_b):
            if name in env_a and name in env_b:
                out[name] = _join_dim(env_a[name], env_b[name])
            else:
                out[name] = env_a.get(name, env_b.get(name, DIM_UNKNOWN))
        return _state_of(out)

    def transfer(self, state: _DimState, event: Event) -> _DimState:
        node = event.node
        env = _env_of(state)
        if event.kind == EVENT_TEST and isinstance(node, (ast.For, ast.AsyncFor)):
            dim = dim_of(node.iter, env)
            if isinstance(node.target, ast.Name) and dim in _DEFINITE:
                env[node.target.id] = dim
            return _state_of(env)
        if event.kind != EVENT_STMT:
            return state
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            if node.value is None:
                return state
            dim = dim_of(node.value, env)
            targets = (
                list(node.targets)
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    env[target.id] = dim
        elif isinstance(node, ast.AugAssign) and isinstance(
            node.target, ast.Name
        ):
            current = env.get(node.target.id, seed_dim(node.target.id))
            value = dim_of(node.value, env)
            env[node.target.id] = _binop_dim(node.op, current, value)
        return _state_of(env)


def dim_of(node: ast.AST, env: Dict[str, str]) -> str:
    """The inferred dimension of an expression under ``env``."""
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool) or not isinstance(
            node.value, (int, float)
        ):
            return DIM_UNKNOWN
        return DIM_SCALAR
    if isinstance(node, ast.Name):
        if node.id in env:
            return env[node.id]
        return seed_dim(node.id)
    if isinstance(node, ast.Attribute):
        if node.attr in CONST_DIM:
            return CONST_DIM[node.attr]
        return seed_dim(node.attr)
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        return dim_of(node.operand, env)
    if isinstance(node, ast.BinOp):
        left = dim_of(node.left, env)
        right = dim_of(node.right, env)
        return _binop_dim(node.op, left, right)
    if isinstance(node, ast.IfExp):
        return _join_dim(dim_of(node.body, env), dim_of(node.orelse, env))
    if isinstance(node, ast.Call):
        name = None
        if isinstance(node.func, ast.Name):
            name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            name = node.func.attr
        if name in HELPER_DIM:
            return HELPER_DIM[name]
        if name in _PASSTHROUGH_CALLS and node.args:
            dims = [dim_of(arg, env) for arg in node.args]
            out = dims[0]
            for dim in dims[1:]:
                if dim == DIM_SCALAR:
                    continue  # min(0.0, x) keeps x's dimension
                out = dim if out == DIM_SCALAR else _join_dim(out, dim)
            return out
    return DIM_UNKNOWN


def _binop_dim(op: ast.operator, left: str, right: str) -> str:
    if isinstance(op, (ast.Add, ast.Sub)):
        if left == right:
            return left
        if left == DIM_SCALAR:
            return right
        if right == DIM_SCALAR:
            return left
        return DIM_UNKNOWN
    if isinstance(op, ast.Mult):
        if DIM_SCALAR in (left, right):
            return right if left == DIM_SCALAR else left
        pair = {left, right}
        if pair == {DIM_TIME, DIM_RATE}:
            return DIM_DATA
        return DIM_UNKNOWN
    if isinstance(op, (ast.Div, ast.FloorDiv)):
        if left == right and left in _DEFINITE:
            return DIM_SCALAR
        if right == DIM_SCALAR:
            return left
        if left == DIM_DATA and right == DIM_RATE:
            return DIM_TIME
        if left == DIM_DATA and right == DIM_TIME:
            return DIM_RATE
        return DIM_UNKNOWN
    return DIM_UNKNOWN


class DimensionRule(Rule):
    """RL008 — flow-sensitive unit-dimension checking.

    Only *definite* mismatches are flagged: both operands must infer to
    concrete, different dimensions (seconds vs bits vs bits/s).
    Dimensionless values absorb (``deadline + 1e-12`` is fine), and
    anything unknown stays silent — RL002 remains the lexical fallback.
    """

    code = "RL008"
    name = "dimension-inference"
    description = (
        "flag +,- and comparisons between expressions inferred to hold "
        "different physical dimensions (seconds / bits / bits-per-s)"
    )
    autofix_hint = (
        "convert through repro.units before combining, or fix the "
        "misnamed variable"
    )

    #: The unit table itself converts freely; the linter is exempt like
    #: RL002.
    EXEMPT = frozenset({"repro/units.py"})

    def applies_to(self, path: PurePosixPath) -> bool:
        rel = _module_relpath(path)
        if rel is None:
            return False
        if str(rel) in self.EXEMPT or rel.parts[:2] == ("repro", "lint"):
            return False
        return True

    def check(
        self,
        tree: ast.Module,
        source: str,
        path: str,
        scope_path: Optional[str] = None,
    ) -> List[Finding]:
        findings: List[Finding] = []
        for func in function_defs(tree):
            findings.extend(self._check_function(func, path))
        return findings

    def _check_function(self, func: FunctionNode, path: str) -> List[Finding]:
        cfg = build_cfg(func)
        analysis = _DimAnalysis(func)
        result = run_forward(cfg, analysis)
        findings: List[Finding] = []
        seen: Set[int] = set()

        def visit(state: _DimState, event: Event) -> None:
            env = _env_of(state)
            for child in walk_in_function(event.node):
                if id(child) in seen:
                    continue
                if isinstance(child, ast.BinOp) and isinstance(
                    child.op, (ast.Add, ast.Sub)
                ):
                    left = dim_of(child.left, env)
                    right = dim_of(child.right, env)
                    if (
                        left in _DEFINITE
                        and right in _DEFINITE
                        and left != right
                    ):
                        seen.add(id(child))
                        op = "+" if isinstance(child.op, ast.Add) else "-"
                        findings.append(
                            self.finding(
                                path,
                                child,
                                f"dimension mismatch: {left} {op} {right}",
                            )
                        )
                elif isinstance(child, ast.Compare):
                    operands = [child.left] + list(child.comparators)
                    for left_node, right_node in zip(operands, operands[1:]):
                        left = dim_of(left_node, env)
                        right = dim_of(right_node, env)
                        if (
                            left in _DEFINITE
                            and right in _DEFINITE
                            and left != right
                        ):
                            seen.add(id(child))
                            findings.append(
                                self.finding(
                                    path,
                                    child,
                                    f"dimension mismatch in comparison: "
                                    f"{left} vs {right}",
                                )
                            )
                            break

        replay(cfg, result, analysis, visit)
        return findings


#: The flow-rule registry, appended to the base rules by the engine.
FLOW_RULES: Tuple[Rule, ...] = (
    TransactionalityRule(),
    AsyncAtomicityRule(),
    DimensionRule(),
)
