"""The reprolint rule classes (RL001-RL004).

Each rule is an :class:`ast`-based check scoped to the packages where its
invariant matters.  Rules are deliberately *domain-aware*: they encode the
conventions this codebase relies on for reproducibility (seeded random
streams), unit discipline (SI base units everywhere, conversions only
through :mod:`repro.units`), float safety (tolerance helpers instead of
``==``), and cache purity (values handed out by the delay-engine caches are
shared and must never be mutated).
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding


class Rule:
    """Base class: one rule code, its scope, and its AST check."""

    code: str = "RL000"
    name: str = "base"
    description: str = ""
    autofix_hint: str = ""

    def applies_to(self, path: PurePosixPath) -> bool:
        raise NotImplementedError

    def check(
        self,
        tree: ast.Module,
        source: str,
        path: str,
        scope_path: Optional[str] = None,
    ) -> List[Finding]:
        """Findings for one module.

        ``path`` is the display path used in findings; ``scope_path`` is
        the path the rule was scoped against (differs when a fixture is
        linted under a virtual path).  Rules that branch on *where* the
        module lives must consult ``scope_path or path``.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------

    def finding(
        self, path: str, node: ast.AST, message: str, hint: Optional[str] = None
    ) -> Finding:
        return Finding(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
            hint=self.autofix_hint if hint is None else hint,
        )


def _module_relpath(path: PurePosixPath) -> Optional[PurePosixPath]:
    """The subpath starting at the ``repro`` package, if any."""
    parts = path.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return PurePosixPath(*parts[i:])
    return None


def _in_packages(path: PurePosixPath, packages: Sequence[str]) -> bool:
    rel = _module_relpath(path)
    if rel is None:
        return False
    parts = rel.parts
    return len(parts) >= 2 and parts[1] in packages


class _ImportMap(ast.NodeVisitor):
    """Alias resolution for the modules the determinism rule cares about."""

    TRACKED = ("time", "datetime", "random", "numpy", "numpy.random")

    def __init__(self) -> None:
        #: local name -> canonical dotted module it is bound to
        self.aliases: Dict[str, str] = {}
        #: local name -> "module.attr" for from-imports of tracked members
        self.members: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name in self.TRACKED:
                self.aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module in self.TRACKED:
            for alias in node.names:
                local = alias.asname or alias.name
                self.members[local] = f"{node.module}.{alias.name}"
        self.generic_visit(node)

    def resolve_attribute(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of an attribute chain, if its root is a
        tracked module alias (``np.random.default_rng`` ->
        ``numpy.random.default_rng``)."""
        chain: List[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            chain.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        root = self.aliases.get(cur.id)
        if root is None:
            member = self.members.get(cur.id)
            if member is not None and chain:
                return member + "." + ".".join(reversed(chain))
            return None
        if not chain:
            return root
        return root + "." + ".".join(reversed(chain))


class DeterminismRule(Rule):
    """RL001 — no wall-clock or module-level RNG state in simulation code.

    Every stochastic choice must route through
    :class:`repro.sim.random.RandomStreams` (or an injected
    ``random.Random``), so a master seed fully determines a run.
    """

    code = "RL001"
    name = "determinism"
    description = (
        "forbid time.time/datetime.now and module-level random/np.random "
        "state in simulation packages"
    )
    autofix_hint = (
        "route randomness through repro.sim.random.RandomStreams or an "
        "injected random.Random; use time.perf_counter() only for "
        "reporting-only timers"
    )

    PACKAGES = ("sim", "fddi", "atm", "interface_device", "faults", "core")
    #: time.* attributes that read the wall clock.
    FORBIDDEN_TIME = frozenset(
        {"time", "time_ns", "monotonic", "monotonic_ns", "localtime", "gmtime"}
    )
    #: perf_counter is allowed for reporting-only timing.
    ALLOWED_TIME = frozenset({"perf_counter", "perf_counter_ns", "sleep"})
    FORBIDDEN_DATETIME = frozenset({"now", "utcnow", "today"})
    #: the only sanctioned attributes of the stdlib ``random`` module: class
    #: constructors for *instance* RNGs (which callers must seed/inject).
    ALLOWED_RANDOM = frozenset({"Random"})
    #: numpy.random attributes usable without touching global state (pure
    #: types, not generators of randomness by themselves).
    ALLOWED_NP_RANDOM = frozenset({"Generator", "SeedSequence", "BitGenerator"})

    def applies_to(self, path: PurePosixPath) -> bool:
        rel = _module_relpath(path)
        if rel is None or str(rel) == "repro/sim/random.py":
            return False
        return _in_packages(path, self.PACKAGES)

    def check(
        self,
        tree: ast.Module,
        source: str,
        path: str,
        scope_path: Optional[str] = None,
    ) -> List[Finding]:
        imports = _ImportMap()
        imports.visit(tree)
        findings: List[Finding] = []

        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                findings.extend(self._check_from_import(node, path))
            elif isinstance(node, ast.Attribute):
                dotted = imports.resolve_attribute(node)
                if dotted is not None:
                    bad = self._forbidden(dotted)
                    if bad is not None:
                        findings.append(self.finding(path, node, bad))
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Name
            ):
                member = imports.members.get(node.func.id)
                if member is not None:
                    bad = self._forbidden(member)
                    if bad is not None:
                        findings.append(self.finding(path, node, bad))
        return findings

    def _check_from_import(
        self, node: ast.ImportFrom, path: str
    ) -> Iterable[Finding]:
        if node.module not in ("time", "datetime", "random", "numpy.random"):
            return []
        out = []
        for alias in node.names:
            bad = self._forbidden(f"{node.module}.{alias.name}")
            if bad is not None:
                out.append(
                    self.finding(path, node, f"import of {bad.split()[0]}")
                )
        return out

    def _forbidden(self, dotted: str) -> Optional[str]:
        """A message when ``dotted`` names a forbidden callable, else None."""
        parts = dotted.split(".")
        if parts[0] == "time" and len(parts) == 2:
            if parts[1] in self.FORBIDDEN_TIME:
                return (
                    f"{dotted}() reads the wall clock; simulation code must "
                    "be reproducible from its seed"
                )
        elif parts[0] == "datetime":
            if parts[-1] in self.FORBIDDEN_DATETIME and len(parts) >= 2:
                return (
                    f"{dotted}() reads the wall clock; simulation code must "
                    "be reproducible from its seed"
                )
        elif parts[0] == "random" and len(parts) == 2:
            if parts[1] not in self.ALLOWED_RANDOM:
                return (
                    f"{dotted} uses the process-global RNG (hidden shared "
                    "state); draw from RandomStreams or an injected "
                    "random.Random"
                )
        elif parts[:2] == ["numpy", "random"] and len(parts) == 3:
            if parts[2] not in self.ALLOWED_NP_RANDOM:
                return (
                    f"{dotted} creates numpy RNG state outside the seed "
                    "plumbing; accept an injected generator instead"
                )
        return None


class UnitDisciplineRule(Rule):
    """RL002 — unit conversions only through :mod:`repro.units`.

    Two checks: (a) *magic conversion literals* — numeric literals whose
    value smells like a unit conversion factor (``8`` bits/byte, ``53``/
    ``48``/``424`` ATM cell geometry, powers of ten between seconds and
    ms/us or bits and Mbits) used as a multiplication/division operand;
    (b) *suffix mismatches* — a variable named ``*_ms`` assigned from a
    helper that returns seconds, ``*_bits`` from one returning bytes, etc.
    """

    code = "RL002"
    name = "unit-discipline"
    description = (
        "flag magic unit-conversion literals outside repro.units and "
        "dimension/suffix mismatches against the units helpers"
    )
    autofix_hint = (
        "use the named constants/helpers in repro.units "
        "(CELL_BYTES, CELL_BITS, MBIT, MS_PER_S, bytes_to_bits, ...)"
    )

    #: Literal values that smell like inline unit conversions.
    SMELL_LITERALS = frozenset(
        {8, 53, 48, 424, 1000, 1_000_000, 1e3, 1e6, 1e9, 1e-3, 1e-6}
    )
    #: What each repro.units helper *returns*.
    HELPER_DIMENSION = {
        "mbps": "bits/s",
        "kbps": "bits/s",
        "milliseconds": "s",
        "microseconds": "s",
        "bytes_to_bits": "bits",
        "bits_to_bytes": "bytes",
        "seconds_to_ms": "ms",
    }
    #: What a name suffix promises.
    SUFFIX_DIMENSION = {
        "_ms": "ms",
        "_us": "us",
        "_ns": "ns",
        "_s": "s",
        "_sec": "s",
        "_seconds": "s",
        "_bits": "bits",
        "_bytes": "bytes",
        "_bps": "bits/s",
    }
    #: Files allowed to spell conversions inline: the unit table itself.
    EXEMPT = frozenset({"repro/units.py"})
    #: Constants from repro.units: ``8 * MS`` is the sanctioned
    #: "magnitude times named unit" idiom, not a conversion smell.
    UNITS_CONSTANTS = frozenset(
        {
            "KBIT",
            "MBIT",
            "GBIT",
            "BYTE",
            "KBYTE",
            "MS",
            "US",
            "NS",
            "MS_PER_S",
            "US_PER_S",
            "CELL_BYTES",
            "CELL_PAYLOAD_BYTES",
            "CELL_BITS",
            "CELL_PAYLOAD_BITS",
            "FDDI_MAX_FRAME_BYTES",
        }
    )

    def applies_to(self, path: PurePosixPath) -> bool:
        rel = _module_relpath(path)
        if rel is None:
            return False
        if str(rel) in self.EXEMPT or rel.parts[:2] == ("repro", "lint"):
            return False
        return True

    def check(
        self,
        tree: ast.Module,
        source: str,
        path: str,
        scope_path: Optional[str] = None,
    ) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Mult, ast.Div)
            ):
                for operand, other in (
                    (node.left, node.right),
                    (node.right, node.left),
                ):
                    if self._is_smell_literal(operand) and not (
                        self._is_units_constant(other)
                    ):
                        value = operand.value  # type: ignore[attr-defined]
                        findings.append(
                            self.finding(
                                path,
                                operand,
                                f"magic conversion literal {value!r} in "
                                "arithmetic; name it in repro.units",
                            )
                        )
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                findings.extend(self._check_suffix(node, path))
        return findings

    def _is_units_constant(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.UNITS_CONSTANTS
        if isinstance(node, ast.Attribute):
            return node.attr in self.UNITS_CONSTANTS
        return False

    def _is_smell_literal(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Constant)
            and isinstance(node.value, (int, float))
            and not isinstance(node.value, bool)
            and node.value in self.SMELL_LITERALS
        )

    def _target_names(self, node: ast.AST) -> List[Tuple[str, ast.AST]]:
        if isinstance(node, ast.Assign):
            targets = node.targets
        else:
            targets = [node.target]  # type: ignore[attr-defined]
        out = []
        for target in targets:
            if isinstance(target, ast.Name):
                out.append((target.id, target))
            elif isinstance(target, ast.Attribute):
                out.append((target.attr, target))
        return out

    def _suffix_of(self, name: str) -> Optional[str]:
        lowered = name.lower()
        best = None
        for suffix in self.SUFFIX_DIMENSION:
            if lowered.endswith(suffix):
                if best is None or len(suffix) > len(best):
                    best = suffix
        return best

    def _check_suffix(self, node: ast.AST, path: str) -> Iterable[Finding]:
        value = node.value  # type: ignore[attr-defined]
        if not (
            isinstance(value, ast.Call) and isinstance(value.func, ast.Name)
        ):
            return []
        returned = self.HELPER_DIMENSION.get(value.func.id)
        if returned is None:
            return []
        out = []
        for name, target in self._target_names(node):
            suffix = self._suffix_of(name)
            if suffix is None:
                continue
            expected = self.SUFFIX_DIMENSION[suffix]
            if expected != returned:
                out.append(
                    self.finding(
                        path,
                        target,
                        f"'{name}' promises {expected} but "
                        f"{value.func.id}() returns {returned}",
                        hint=f"rename the variable or convert the value to "
                        f"{expected}",
                    )
                )
        return out


class FloatSafetyRule(Rule):
    """RL003 — no ``==``/``!=`` between floats in the math kernels.

    Envelope and admission arithmetic accumulates rounding error; exact
    comparison against a float literal (or between two float-annotated
    values) is almost always a latent bug.  Exact *integer-literal*
    sentinels (``latency == 0``) remain allowed — they test "was this left
    at its default", not numeric coincidence.
    """

    code = "RL003"
    name = "float-safety"
    description = (
        "forbid ==/!= against float literals (and between float-annotated "
        "names) in repro.core and repro.envelopes"
    )
    autofix_hint = (
        "use the tolerance helpers (repro.envelopes.curve._is_close / EPS "
        "bands, math.isclose) or an exact integer sentinel"
    )

    PACKAGES = ("core", "envelopes")

    def applies_to(self, path: PurePosixPath) -> bool:
        return _in_packages(path, self.PACKAGES)

    def check(
        self,
        tree: ast.Module,
        source: str,
        path: str,
        scope_path: Optional[str] = None,
    ) -> List[Finding]:
        findings: List[Finding] = []
        float_names = _collect_float_annotated(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if any(_is_float_literal(o) for o in (left, right)):
                    findings.append(
                        self.finding(
                            path,
                            node,
                            "exact ==/!= against a float literal",
                        )
                    )
                elif all(
                    isinstance(o, ast.Name) and o.id in float_names
                    for o in (left, right)
                ):
                    findings.append(
                        self.finding(
                            path,
                            node,
                            "exact ==/!= between float-annotated values",
                        )
                    )
        return findings


def _is_float_literal(node: ast.AST) -> bool:
    # A negated literal parses as UnaryOp(USub, Constant).
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _collect_float_annotated(tree: ast.Module) -> Set[str]:
    """Names annotated ``float`` anywhere in the module (args + AnnAssign)."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = list(node.args.args) + list(node.args.kwonlyargs)
            args += list(node.args.posonlyargs)
            for arg in args:
                if _is_float_annotation(arg.annotation):
                    names.add(arg.arg)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            if _is_float_annotation(node.annotation):
                names.add(node.target.id)
    return names


def _is_float_annotation(annotation: Optional[ast.AST]) -> bool:
    return (
        isinstance(annotation, ast.Name) and annotation.id == "float"
    ) or (
        isinstance(annotation, ast.Constant) and annotation.value == "float"
    )


class CachePurityRule(Rule):
    """RL004 — never mutate a shared value (cache entry or breakpoint array).

    The LRU caches and the :class:`IncrementalDelayEngine` memos hand out
    *shared references*; the bit-identical-to-full-recompute guarantee
    assumes cached envelopes/reports are immutable.  This rule taints names
    bound from ``<cache>.get(...)`` / ``<memo>[key]`` and flags attribute
    stores, item stores, deletes, and known mutating method calls on them.

    ``Curve.breakpoints()`` likewise returns the curve's *own* float64
    array without copying (the vectorized kernels share these arrays
    freely), so in-place mutation of a name bound from a
    ``.breakpoints()`` call — item stores, augmented assignment, numpy
    mutator methods, or being the ``out=`` target of a ufunc — is flagged
    everywhere in the tree, not just in the delay engine.
    """

    code = "RL004"
    name = "cache-purity"
    description = (
        "forbid in-place mutation of values obtained from the LRU caches, "
        "IncrementalDelayEngine memos, or Curve.breakpoints() arrays"
    )
    autofix_hint = (
        "copy before mutating (dict(...), list(...), np.array(...), "
        "dataclasses.replace) or build a fresh value and re-put it"
    )

    FILES = frozenset({"repro/core/delay.py", "repro/core/incremental.py"})
    #: Attribute/name fragments that identify a cache-like container.
    CACHE_MARKERS = ("cache", "memo")
    CACHE_NAMES = frozenset(
        {"_reports", "_ports_of", "_port_usage", "_load_memo", "_data"}
    )
    MUTATORS = frozenset(
        {
            "append",
            "extend",
            "insert",
            "add",
            "update",
            "pop",
            "popitem",
            "clear",
            "remove",
            "discard",
            "sort",
            "reverse",
            "setdefault",
            "move_to_end",
        }
    )
    #: In-place numpy ndarray methods (``.sort()`` is shared with MUTATORS).
    ARRAY_MUTATORS = frozenset(
        {"sort", "fill", "put", "resize", "partition", "itemset", "byteswap"}
    )

    def applies_to(self, path: PurePosixPath) -> bool:
        # Cache-entry taints are scoped to FILES; breakpoints()-array taints
        # apply to every repro module.
        return _module_relpath(path) is not None

    def check(
        self,
        tree: ast.Module,
        source: str,
        path: str,
        scope_path: Optional[str] = None,
    ) -> List[Finding]:
        where = (scope_path or path).replace("\\", "/")
        rel = _module_relpath(PurePosixPath(where))
        cache_scope = rel is not None and str(rel) in self.FILES
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(
                    self._check_function(node, path, cache_scope=cache_scope)
                )
        return findings

    def _is_cache_container(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Name):
            name = node.id
        else:
            return False
        lowered = name.lower()
        return name in self.CACHE_NAMES or any(
            marker in lowered for marker in self.CACHE_MARKERS
        )

    def _cache_read(self, node: ast.AST) -> bool:
        """Does ``node`` evaluate to a value fetched from a cache?"""
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("get", "__getitem__")
                and self._is_cache_container(func.value)
            ):
                return True
        if isinstance(node, ast.Subscript) and self._is_cache_container(
            node.value
        ):
            return True
        return False

    @staticmethod
    def _breakpoints_read(node: ast.AST) -> bool:
        """Does ``node`` evaluate to a ``<curve>.breakpoints()`` array?"""
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "breakpoints"
            and not node.args
            and not node.keywords
        )

    def _check_function(
        self, func: ast.AST, path: str, cache_scope: bool = True
    ) -> Iterable[Finding]:
        tainted: Set[str] = set()
        bp_tainted: Set[str] = set()
        findings: List[Finding] = []

        for node in ast.walk(func):  # first pass: what is tainted?
            if isinstance(node, ast.Assign):
                if cache_scope and self._cache_read(node.value):
                    sink = tainted
                elif self._breakpoints_read(node.value):
                    sink = bp_tainted
                else:
                    continue
                for target in node.targets:
                    for element in _flatten_targets(target):
                        if isinstance(element, ast.Name):
                            sink.add(element.id)
        if not tainted and not bp_tainted:
            return findings

        def is_tainted(node: ast.AST) -> bool:
            return isinstance(node, ast.Name) and node.id in tainted

        def is_bp_tainted(node: ast.AST) -> bool:
            return isinstance(node, ast.Name) and node.id in bp_tainted

        for node in ast.walk(func):  # second pass: is a tainted value mutated?
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    base = target
                    if isinstance(base, (ast.Attribute, ast.Subscript)):
                        if is_tainted(base.value):
                            findings.append(
                                self.finding(
                                    path,
                                    node,
                                    "mutation of a cached value (store "
                                    "through a name bound from a cache)",
                                )
                            )
                        elif is_bp_tainted(base.value):
                            findings.append(
                                self.finding(
                                    path,
                                    node,
                                    "in-place store into a "
                                    "Curve.breakpoints() array",
                                )
                            )
                # ``arr += x`` on an ndarray mutates in place (unlike a
                # plain-name rebind of an int/list), so a bare Name target
                # of an AugAssign is a mutation for breakpoint arrays.
                if isinstance(node, ast.AugAssign) and is_bp_tainted(
                    node.target
                ):
                    findings.append(
                        self.finding(
                            path,
                            node,
                            "augmented assignment mutates a "
                            "Curve.breakpoints() array in place",
                        )
                    )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(
                        target, (ast.Attribute, ast.Subscript)
                    ) and (is_tainted(target.value) or is_bp_tainted(target.value)):
                        findings.append(
                            self.finding(
                                path, node, "del on a cached value"
                            )
                        )
            elif isinstance(node, ast.Call):
                func_node = node.func
                if isinstance(func_node, ast.Attribute) and (
                    (func_node.attr in self.MUTATORS and is_tainted(func_node.value))
                    or (
                        func_node.attr in self.MUTATORS | self.ARRAY_MUTATORS
                        and is_bp_tainted(func_node.value)
                    )
                ):
                    findings.append(
                        self.finding(
                            path,
                            node,
                            f".{func_node.attr}() on a cached value",
                        )
                    )
                # np.<ufunc>(..., out=arr) writes into arr in place.
                for keyword in node.keywords:
                    if keyword.arg == "out" and (
                        is_bp_tainted(keyword.value)
                        or (
                            isinstance(keyword.value, ast.Tuple)
                            and any(
                                is_bp_tainted(el) for el in keyword.value.elts
                            )
                        )
                    ):
                        findings.append(
                            self.finding(
                                path,
                                node,
                                "ufunc out= targets a "
                                "Curve.breakpoints() array",
                            )
                        )
        return findings


def _flatten_targets(node: ast.AST) -> Iterable[ast.AST]:
    if isinstance(node, (ast.Tuple, ast.List)):
        for element in node.elts:
            yield from _flatten_targets(element)
    else:
        yield node


#: The AST-walk rules; the engine appends the flow rules (RL006-RL008)
#: from :mod:`repro.lint.rules_flow` to form the full registry.
BASE_RULES: Tuple[Rule, ...] = (
    DeterminismRule(),
    UnitDisciplineRule(),
    FloatSafetyRule(),
    CachePurityRule(),
)
