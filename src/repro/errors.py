"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A configuration object failed validation."""


class CurveError(ReproError):
    """An envelope-algebra operation received invalid curves."""


class UnstableSystemError(ReproError):
    """A server analysis diverged: long-term arrival rate exceeds service rate.

    In the paper's terms, the busy interval of the server is unbounded and the
    worst-case delay is infinite.  Admission control treats this as an
    automatic rejection.
    """


class BufferOverflowError(ReproError):
    """The worst-case backlog exceeds the buffer provisioned at a server.

    Theorem 1 defines the worst-case delay to be infinite in this case; the
    CAC must therefore reject the allocation that produced it.
    """


class TopologyError(ReproError):
    """The network topology is malformed or a route cannot be found."""


class RoutingError(TopologyError):
    """No route exists between the requested endpoints."""


class AdmissionError(ReproError):
    """A connection could not be admitted.

    Carries a human-readable ``reason`` so simulators and examples can report
    why the CAC said no.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class CyclicDependencyError(ReproError):
    """The per-port envelope propagation graph is not feed-forward.

    The decomposition analysis of Section 4 requires that traffic envelopes
    can be propagated server-by-server in topological order.  Routes that
    create a cyclic mutual dependency between shared servers are outside the
    model and are rejected explicitly rather than analyzed incorrectly.
    """


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class AuditError(ReproError):
    """An end-of-run audit found leaked resources or broken contracts.

    Raised by the survivability experiment and the admission service on
    shutdown when :func:`repro.faults.audit.audit_controller` (or the
    service's sharded equivalent) reports leaked synchronous bandwidth or
    deadline violations.  The message carries the full audit report.
    """


class JournalError(ReproError):
    """The admission service's write-ahead journal is malformed.

    Raised for structural problems a recovery cannot safely skip (e.g. a
    snapshot that fails validation, or replaying an operation against a
    state it cannot apply to).  A torn *tail* is not an error — recovery
    truncates it and reports the fact instead.
    """
