"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations

from typing import Optional, Tuple


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A configuration object failed validation."""


class CurveError(ReproError):
    """An envelope-algebra operation received invalid curves."""


class UnstableSystemError(ReproError):
    """A server analysis diverged: long-term arrival rate exceeds service rate.

    In the paper's terms, the busy interval of the server is unbounded and the
    worst-case delay is infinite.  Admission control treats this as an
    automatic rejection.
    """


class BufferOverflowError(ReproError):
    """The worst-case backlog exceeds the buffer provisioned at a server.

    Theorem 1 defines the worst-case delay to be infinite in this case; the
    CAC must therefore reject the allocation that produced it.
    """


class TopologyError(ReproError):
    """The network topology is malformed or a route cannot be found."""


class RoutingError(TopologyError):
    """No route exists between the requested endpoints."""


class AdmissionError(ReproError):
    """A connection could not be admitted.

    Carries a human-readable ``reason`` so simulators and examples can report
    why the CAC said no.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class CyclicDependencyError(ReproError):
    """The per-port envelope propagation graph is not feed-forward.

    The decomposition analysis of Section 4 propagates traffic envelopes
    server-by-server in topological order; routes that create a cyclic
    mutual dependency between shared servers fall back to the monotone
    fixed-point iteration (see :mod:`repro.core.delay`).  This error is
    reserved for internal consistency failures of the feed-forward
    worklist itself (a stuck connection with no unresolved shared port).
    """


class FixedPointDivergenceError(UnstableSystemError):
    """The cyclic-interference fixed-point iteration failed to converge.

    The per-port shift map is monotone and non-decreasing on the quantized
    delay lattice, so divergence means the iterates climbed past the
    configured ``fixed_point_max_iterations`` cap — the cyclic dependency
    admits no stable bound at this load.  Subclasses
    :class:`UnstableSystemError`, so admission control treats it as an
    automatic rejection.
    """


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class AuditError(ReproError):
    """An end-of-run audit found leaked resources or broken contracts.

    Raised by the survivability experiment and the admission service on
    shutdown when :func:`repro.faults.audit.audit_controller` (or the
    service's sharded equivalent) reports leaked synchronous bandwidth or
    deadline violations.  The message carries the full audit report.
    """


class ScenarioSpecError(ReproError):
    """A scenario spec failed to parse, validate or serialize.

    Raised by :mod:`repro.scenario.codec` for structural problems: unknown
    top-level or nested fields, missing required fields, values of the
    wrong type, or traffic models outside the closed registry.  Parsing is
    strict by design — a mistyped knob must fail loudly, not silently run
    the default scenario.
    """


class ScenarioInvariantError(ReproError):
    """A fuzzed scenario violated the differential invariant suite.

    Raised by :mod:`repro.scenario.fuzz` after shrinking: carries the
    violated invariant names, the offending spec's content hash, the
    generator seed (``None`` for hand-written specs), and the path of the
    minimal reproducer written to disk, so the failure is reproducible with
    ``python -m repro scenario replay <reproducer.json>``.
    """

    def __init__(
        self,
        message: str,
        *,
        invariants: Tuple[str, ...] = (),
        spec_hash: str = "",
        seed: Optional[int] = None,
        reproducer_path: Optional[str] = None,
    ) -> None:
        details = [message]
        if invariants:
            details.append(f"violated: {', '.join(invariants)}")
        if spec_hash:
            details.append(f"spec {spec_hash[:12]}")
        if seed is not None:
            details.append(f"seed {seed}")
        if reproducer_path:
            details.append(f"reproducer: {reproducer_path}")
        super().__init__(" | ".join(details))
        self.invariants = invariants
        self.spec_hash = spec_hash
        self.seed = seed
        self.reproducer_path = reproducer_path


class JournalError(ReproError):
    """The admission service's write-ahead journal is malformed.

    Raised for structural problems a recovery cannot safely skip (e.g. a
    snapshot that fails validation, or replaying an operation against a
    state it cannot apply to).  A torn *tail* is not an error — recovery
    truncates it and reports the fact instead.
    """
