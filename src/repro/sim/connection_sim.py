"""The paper's evaluation harness (Section 6).

Connection requests arrive as a Poisson process with rate ``lambda``; each
picks a source host uniformly among the currently *inactive* hosts and a
destination on a different ring (routes always cross the ATM backbone, as
in the paper); traffic is dual-periodic; admitted connections live for an
exponentially distributed time with mean ``1/mu``.  The measured metric is
the admission probability AP = admitted / requests.

The backbone load knob is the paper's ``U``: the average utilization of one
backbone link, ``U = (lambda / (n_links * mu)) * rho / C_link`` — the
simulator inverts this to set ``lambda``.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.config import CACConfig, NetworkConfig, SimulationConfig, build_network
from repro.core.cac import AdmissionController, AdmissionResult
from repro.core.failover import FailoverManager
from repro.core.policies import AllocationPolicy
from repro.errors import ReproError
from repro.network.connection import ConnectionSpec
from repro.sim.engine import Simulator
from repro.sim.metrics import SimulationMetrics, SurvivabilityMetrics
from repro.sim.random import RandomStreams
from repro.topo.spec import TopologySpec
from repro.traffic.generators import WorkloadGenerator

if TYPE_CHECKING:  # imported lazily at runtime (repro.faults imports repro.sim)
    from repro.faults.audit import SurvivabilityAudit
    from repro.faults.injector import FaultConfig, FaultInjector, FaultScript
    from repro.faults.retry import RetryOrchestrator, RetryPolicy


@dataclasses.dataclass(frozen=True)
class ConnectionSimConfig:
    """One simulation run's parameters."""

    utilization: float
    beta: float = 0.5
    seed: int = 1
    #: Stop after this many connection requests (the paper's AP estimator).
    n_requests: int = 400
    #: Warm-up requests excluded from the AP estimate.
    warmup_requests: int = 40
    network: NetworkConfig = dataclasses.field(default_factory=NetworkConfig)
    #: Declarative structural topology (None = the reference pairwise mesh
    #: built from ``network``).  When set, ``network`` supplies only the
    #: default parameters and the offered-load calibration uses the built
    #: topology's aggregate backbone capacity instead of the mesh formula.
    topo: Optional[TopologySpec] = None
    simulation: SimulationConfig = dataclasses.field(default_factory=SimulationConfig)
    cac: Optional[CACConfig] = None
    #: Stochastic fault processes (None/disabled = the fault-free paper run).
    faults: Optional["FaultConfig"] = None
    #: Deterministic fault schedule (tests/drills); may combine with faults.
    fault_script: Optional["FaultScript"] = None
    #: Backoff schedule for re-admitting displaced connections (None = the
    #: RetryPolicy defaults).
    retry: Optional["RetryPolicy"] = None

    def cac_config(self) -> CACConfig:
        if self.cac is not None:
            return self.cac
        return CACConfig(beta=self.beta)

    @property
    def faults_enabled(self) -> bool:
        return self.fault_script is not None or (
            self.faults is not None and self.faults.any_enabled
        )


@dataclasses.dataclass(frozen=True)
class SimResult:
    """Outcome of one simulation run."""

    config: ConnectionSimConfig
    admission_probability: float
    metrics: SimulationMetrics
    sim_time: float
    #: End-of-run invariant check (fault-injection runs only).
    audit: Optional["SurvivabilityAudit"] = None

    @property
    def survivability(self) -> Optional[SurvivabilityMetrics]:
        return self.metrics.survivability


class ConnectionSimulator:
    """Drives the CAC with the paper's stochastic workload."""

    def __init__(
        self,
        config: ConnectionSimConfig,
        policy: Optional[AllocationPolicy] = None,
        workload_generator=None,
    ) -> None:
        self.config = config
        if config.topo is not None:
            self.topology = config.topo.build(config.network)
        else:
            self.topology = build_network(config.network)
        self.cac = AdmissionController(
            self.topology,
            network_config=config.network,
            cac_config=config.cac_config(),
            policy=policy,
        )
        self.streams = RandomStreams(config.seed)
        if workload_generator is not None:
            # Caller-supplied generator (e.g. a MixedWorkloadGenerator);
            # must expose .sample() -> (traffic, deadline) and .mean_rate.
            self.workload = workload_generator
        else:
            self.workload = WorkloadGenerator(
                config.simulation.workload, self.streams.stream("workload")
            )
        self.sim = Simulator()
        self.metrics = SimulationMetrics()
        self.arrival_rate = config.simulation.arrival_rate_for_utilization(
            config.utilization,
            config.network,
            backbone_capacity=(
                None
                if config.topo is None
                else self.topology.backbone_capacity()
            ),
        )
        self._active_hosts: set = set()
        self._counter = 0
        self._measuring = False
        #: conn_id -> (departure Event, absolute departure time); needed so
        #: a fault can cancel the departure of a displaced connection.
        self._departures: Dict[str, tuple] = {}
        self.injector: Optional["FaultInjector"] = None
        self.retries: Optional["RetryOrchestrator"] = None
        if config.faults_enabled:
            from repro.faults.injector import FaultInjector
            from repro.faults.retry import RetryOrchestrator, RetryPolicy

            self.metrics.survivability = SurvivabilityMetrics()
            self.failover = FailoverManager(self.cac)
            self.retries = RetryOrchestrator(
                sim=self.sim,
                cac=self.cac,
                policy=config.retry or RetryPolicy(),
                rng=self.streams.stream("faults:retry-jitter"),
                metrics=self.metrics.survivability,
                on_reconnected=self._on_reconnected,
                on_abandoned=self._on_retry_gave_up,
                on_expired=self._on_retry_gave_up,
            )
            self.injector = FaultInjector(
                sim=self.sim,
                manager=self.failover,
                streams=self.streams,
                config=config.faults,
                script=config.fault_script,
                on_displaced=self._on_displaced,
                on_repaired=self._on_repaired,
            )

    # ------------------------------------------------------------------

    def _eligible_sources(self) -> List[str]:
        return sorted(
            h for h in self.topology.hosts if h not in self._active_hosts
        )

    def _pick_destination(self, source: str) -> str:
        """A host on a *different* ring (routes always cross the backbone)."""
        src_ring = self.topology.hosts[source].ring_id
        candidates = sorted(
            h
            for h, host in self.topology.hosts.items()
            if host.ring_id != src_ring
        )
        return self.streams.choice("destination", candidates)

    def _schedule_next_arrival(self) -> None:
        gap = self.streams.exponential("arrivals", 1.0 / self.arrival_rate)
        self.sim.schedule(gap, self._on_arrival)

    def _on_arrival(self) -> None:
        self._counter += 1
        if self._counter > self.config.n_requests:
            return  # stop generating load
        if self._counter > self.config.warmup_requests:
            self._measuring = True
        self._schedule_next_arrival()

        if self._measuring:
            self.metrics.n_requests += 1
        sources = self._eligible_sources()
        if not sources:
            if self._measuring:
                self.metrics.n_blocked_no_host += 1
                if self.config.simulation.count_host_blocked:
                    self.metrics.n_rejected_cac += 1
            return
        source = self.streams.choice("source", sources)
        dest = self._pick_destination(source)
        traffic, deadline = self.workload.sample()
        spec = ConnectionSpec(
            f"conn-{self._counter}", source, dest, traffic, deadline
        )
        try:
            result = self.cac.request(spec)
        except ReproError:
            # Degraded topology (faults): no route / unviable analysis is a
            # clean rejection of the fresh request, not a simulator crash.
            if self._measuring:
                self.metrics.n_rejected_cac += 1
                self.metrics.n_rejected_no_route += 1
            return
        if result.admitted:
            self._active_hosts.add(source)
            if self._measuring:
                self.metrics.n_admitted += 1
                self.metrics.delay_bounds.add(result.record.delay_bound)
                self.metrics.grants.add(result.record.h_source)
            self.metrics.record_active_change(self.sim.now, +1)
            lifetime = self.streams.exponential(
                "lifetimes", self.config.simulation.mean_lifetime
            )
            self._schedule_departure(spec.conn_id, source, lifetime)
        else:
            if self._measuring:
                self.metrics.n_rejected_cac += 1
                if "bandwidth" in result.reason:
                    self.metrics.n_rejected_no_bandwidth += 1
                else:
                    self.metrics.n_rejected_infeasible += 1

    def _schedule_departure(self, conn_id: str, host: str, delay: float) -> None:
        event = self.sim.schedule(
            delay, lambda cid=conn_id, h=host: self._on_departure(cid, h)
        )
        self._departures[conn_id] = (event, event.time)

    def _on_departure(self, conn_id: str, host: str) -> None:
        self._departures.pop(conn_id, None)
        self.cac.release(conn_id)
        self._active_hosts.discard(host)
        self.metrics.n_departures += 1
        self.metrics.record_active_change(self.sim.now, -1)

    # ------------------------------------------------------------------
    # Fault handling (wired only when faults are enabled)
    # ------------------------------------------------------------------

    def _on_displaced(self, kind, target, specs) -> None:
        """A failure tore these connections down: cancel their departures
        and queue them for backoff re-admission.  Their source hosts stay
        reserved while the retry is pending."""
        sv = self.metrics.survivability
        if kind == "link":
            sv.n_link_failures += 1
        else:
            sv.n_node_failures += 1
        for spec in specs:
            event, depart_at = self._departures.pop(spec.conn_id)
            event.cancel()
            self.metrics.record_active_change(self.sim.now, -1)
            self.retries.enqueue(spec, expires_at=depart_at)

    def _on_repaired(self, kind, target) -> None:
        self.metrics.survivability.n_repairs += 1
        # The topology just improved: re-attempt the whole retry queue now,
        # tightest deadlines first, instead of waiting out the backoffs.
        self.retries.kick_all()

    def _on_reconnected(self, entry, result) -> None:
        self.metrics.record_active_change(self.sim.now, +1)
        # The connection resumes the remainder of its original lifetime.
        self._schedule_departure(
            entry.conn_id,
            entry.spec.source_host,
            entry.expires_at - self.sim.now,
        )

    def _on_retry_gave_up(self, entry) -> None:
        """Abandoned (attempt budget exhausted) or expired while queued:
        the source host finally frees up."""
        self._active_hosts.discard(entry.spec.source_host)

    # ------------------------------------------------------------------

    def preadmit(self, spec: ConnectionSpec) -> "AdmissionResult":
        """Admit a fixed connection before the stochastic run starts.

        Scenario-spec runs (:mod:`repro.scenario`) pin an explicit
        connection set under the stochastic churn: an admitted pinned
        connection occupies its source host and never departs, so it stays
        in the active set for the whole run.  Must be called before
        :meth:`run`; incompatible with fault injection (a displaced pinned
        connection has no departure to cancel), which the scenario spec
        validation enforces.
        """
        if self.config.faults_enabled:
            raise ReproError(
                "preadmitted connections are incompatible with fault "
                "injection"
            )
        result = self.cac.request(spec)
        if result.admitted:
            self._active_hosts.add(spec.source_host)
            self.metrics.record_active_change(self.sim.now, +1)
        return result

    def run(self) -> SimResult:
        """Run until ``n_requests`` requests have been issued."""
        if self.injector is not None:
            self.injector.start()
        self._schedule_next_arrival()
        while self._counter <= self.config.n_requests and self.sim.step():
            pass
        audit = None
        if self.config.faults_enabled:
            from repro.faults.audit import audit_controller

            audit = audit_controller(self.cac)
        return SimResult(
            config=self.config,
            admission_probability=self.metrics.admission_probability,
            metrics=self.metrics,
            sim_time=self.sim.now,
            audit=audit,
        )


def run_admission_probability(
    utilization: float,
    beta: float,
    seed: int = 1,
    n_requests: int = 400,
    policy: Optional[AllocationPolicy] = None,
    simulation: Optional[SimulationConfig] = None,
    network: Optional[NetworkConfig] = None,
) -> SimResult:
    """Convenience wrapper: one (U, beta) point of Figures 7/8."""
    cfg = ConnectionSimConfig(
        utilization=utilization,
        beta=beta,
        seed=seed,
        n_requests=n_requests,
        network=network or NetworkConfig(),
        simulation=simulation or SimulationConfig(),
    )
    return ConnectionSimulator(cfg, policy=policy).run()
