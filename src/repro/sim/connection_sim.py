"""The paper's evaluation harness (Section 6).

Connection requests arrive as a Poisson process with rate ``lambda``; each
picks a source host uniformly among the currently *inactive* hosts and a
destination on a different ring (routes always cross the ATM backbone, as
in the paper); traffic is dual-periodic; admitted connections live for an
exponentially distributed time with mean ``1/mu``.  The measured metric is
the admission probability AP = admitted / requests.

The backbone load knob is the paper's ``U``: the average utilization of one
backbone link, ``U = (lambda / (n_links * mu)) * rho / C_link`` — the
simulator inverts this to set ``lambda``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.config import CACConfig, NetworkConfig, SimulationConfig, build_network
from repro.core.cac import AdmissionController
from repro.core.policies import AllocationPolicy
from repro.network.connection import ConnectionSpec
from repro.sim.engine import Simulator
from repro.sim.metrics import SimulationMetrics
from repro.sim.random import RandomStreams
from repro.traffic.generators import WorkloadGenerator


@dataclasses.dataclass(frozen=True)
class ConnectionSimConfig:
    """One simulation run's parameters."""

    utilization: float
    beta: float = 0.5
    seed: int = 1
    #: Stop after this many connection requests (the paper's AP estimator).
    n_requests: int = 400
    #: Warm-up requests excluded from the AP estimate.
    warmup_requests: int = 40
    network: NetworkConfig = dataclasses.field(default_factory=NetworkConfig)
    simulation: SimulationConfig = dataclasses.field(default_factory=SimulationConfig)
    cac: Optional[CACConfig] = None

    def cac_config(self) -> CACConfig:
        if self.cac is not None:
            return self.cac
        return CACConfig(beta=self.beta)


@dataclasses.dataclass(frozen=True)
class SimResult:
    """Outcome of one simulation run."""

    config: ConnectionSimConfig
    admission_probability: float
    metrics: SimulationMetrics
    sim_time: float


class ConnectionSimulator:
    """Drives the CAC with the paper's stochastic workload."""

    def __init__(
        self,
        config: ConnectionSimConfig,
        policy: Optional[AllocationPolicy] = None,
        workload_generator=None,
    ):
        self.config = config
        self.topology = build_network(config.network)
        self.cac = AdmissionController(
            self.topology,
            network_config=config.network,
            cac_config=config.cac_config(),
            policy=policy,
        )
        self.streams = RandomStreams(config.seed)
        if workload_generator is not None:
            # Caller-supplied generator (e.g. a MixedWorkloadGenerator);
            # must expose .sample() -> (traffic, deadline) and .mean_rate.
            self.workload = workload_generator
        else:
            self.workload = WorkloadGenerator(
                config.simulation.workload, self.streams.stream("workload")
            )
        self.sim = Simulator()
        self.metrics = SimulationMetrics()
        self.arrival_rate = config.simulation.arrival_rate_for_utilization(
            config.utilization, config.network
        )
        self._active_hosts: set = set()
        self._counter = 0
        self._measuring = False

    # ------------------------------------------------------------------

    def _eligible_sources(self) -> List[str]:
        return sorted(
            h for h in self.topology.hosts if h not in self._active_hosts
        )

    def _pick_destination(self, source: str) -> str:
        """A host on a *different* ring (routes always cross the backbone)."""
        src_ring = self.topology.hosts[source].ring_id
        candidates = sorted(
            h
            for h, host in self.topology.hosts.items()
            if host.ring_id != src_ring
        )
        return self.streams.choice("destination", candidates)

    def _schedule_next_arrival(self) -> None:
        gap = self.streams.exponential("arrivals", 1.0 / self.arrival_rate)
        self.sim.schedule(gap, self._on_arrival)

    def _on_arrival(self) -> None:
        self._counter += 1
        if self._counter > self.config.n_requests:
            return  # stop generating load
        if self._counter > self.config.warmup_requests:
            self._measuring = True
        self._schedule_next_arrival()

        if self._measuring:
            self.metrics.n_requests += 1
        sources = self._eligible_sources()
        if not sources:
            if self._measuring:
                self.metrics.n_blocked_no_host += 1
                if self.config.simulation.count_host_blocked:
                    self.metrics.n_rejected_cac += 1
            return
        source = self.streams.choice("source", sources)
        dest = self._pick_destination(source)
        traffic, deadline = self.workload.sample()
        spec = ConnectionSpec(
            f"conn-{self._counter}", source, dest, traffic, deadline
        )
        result = self.cac.request(spec)
        if result.admitted:
            self._active_hosts.add(source)
            if self._measuring:
                self.metrics.n_admitted += 1
                self.metrics.delay_bounds.add(result.record.delay_bound)
                self.metrics.grants.add(result.record.h_source)
            self.metrics.record_active_change(self.sim.now, +1)
            lifetime = self.streams.exponential(
                "lifetimes", self.config.simulation.mean_lifetime
            )
            self.sim.schedule(
                lifetime, lambda cid=spec.conn_id, host=source: self._on_departure(cid, host)
            )
        else:
            if self._measuring:
                self.metrics.n_rejected_cac += 1
                if "bandwidth" in result.reason:
                    self.metrics.n_rejected_no_bandwidth += 1
                else:
                    self.metrics.n_rejected_infeasible += 1

    def _on_departure(self, conn_id: str, host: str) -> None:
        self.cac.release(conn_id)
        self._active_hosts.discard(host)
        self.metrics.n_departures += 1
        self.metrics.record_active_change(self.sim.now, -1)

    # ------------------------------------------------------------------

    def run(self) -> SimResult:
        """Run until ``n_requests`` requests have been issued."""
        self._schedule_next_arrival()
        while self._counter <= self.config.n_requests and self.sim.step():
            pass
        return SimResult(
            config=self.config,
            admission_probability=self.metrics.admission_probability,
            metrics=self.metrics,
            sim_time=self.sim.now,
        )


def run_admission_probability(
    utilization: float,
    beta: float,
    seed: int = 1,
    n_requests: int = 400,
    policy: Optional[AllocationPolicy] = None,
    simulation: Optional[SimulationConfig] = None,
    network: Optional[NetworkConfig] = None,
) -> SimResult:
    """Convenience wrapper: one (U, beta) point of Figures 7/8."""
    cfg = ConnectionSimConfig(
        utilization=utilization,
        beta=beta,
        seed=seed,
        n_requests=n_requests,
        network=network or NetworkConfig(),
        simulation=simulation or SimulationConfig(),
    )
    return ConnectionSimulator(cfg, policy=policy).run()
