"""Named, independently seeded random streams.

Each simulation concern (arrival process, lifetimes, workload parameters,
host selection) draws from its own ``random.Random`` derived from the
master seed, so changing how one concern consumes randomness does not
perturb the others — the standard variance-reduction discipline for
simulation studies.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Sequence, TypeVar

T = TypeVar("T")


class RandomStreams:
    """A family of named deterministic random streams."""

    def __init__(self, master_seed: int) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name`` (created on first use)."""
        if name not in self._streams:
            # Derive a stable per-name seed from the master seed.  (Python's
            # built-in str hash is salted per process, so use a real digest.)
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode()
            ).digest()
            derived = int.from_bytes(digest[:8], "big")
            self._streams[name] = random.Random(derived)
        return self._streams[name]

    def exponential(self, name: str, mean: float) -> float:
        """One exponential variate with the given mean."""
        if mean <= 0:
            raise ValueError("mean must be positive")
        return self.stream(name).expovariate(1.0 / mean)

    def choice(self, name: str, seq: Sequence[T]) -> T:
        return self.stream(name).choice(seq)

    def uniform(self, name: str, lo: float, hi: float) -> float:
        return self.stream(name).uniform(lo, hi)
