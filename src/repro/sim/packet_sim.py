"""Packet/cell-level simulation of the FDDI-ATM-FDDI data path.

This simulator *executes* the network the analysis of Section 4 only
bounds: a rotating timed token serves each station's synchronous queue for
at most ``H`` seconds per visit, interface devices forward traffic into
FIFO ATM output-port queues drained at the link payload rate, and the
receiving device's per-connection allocation transmits rebuilt frames onto
the destination ring.

Its purpose is validation: for any admitted connection set, every observed
end-to-end packet delay must stay below the analytic worst-case bound the
CAC computed (experiment E3 in DESIGN.md).  Sources emit their greedy
worst-case trajectories to stress the bound.

Modeling notes (all err on the side of *under*-loading the simulated
network relative to the analysis, so the bound must still dominate):

* bits flow in "chunks" (one chunk per token visit / port service);
* cell padding is not added on the ATM side;
* the token rotates immediately when queues are idle (the analysis instead
  assumes the worst token phase).
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import NetworkConfig
from repro.core.delay import ConnectionLoad
from repro.network.topology import NetworkTopology
from repro.sim.engine import Simulator


@dataclasses.dataclass
class _Batch:
    """One source arrival event: ``bits`` offered at ``arrival_time``."""

    batch_id: int
    conn_id: str
    arrival_time: float
    bits: float
    delivered: float = 0.0
    completion_time: Optional[float] = None


@dataclasses.dataclass
class _Chunk:
    """Bits in flight, sliced FIFO from one connection's queue."""

    conn_id: str
    slices: List[Tuple[_Batch, float]]

    @property
    def bits(self) -> float:
        return sum(b for _, b in self.slices)


class _Station:
    """A synchronous transmitter on a ring (a host or one ID allocation)."""

    def __init__(self, key: str, sync_time: float, on_transmit) -> None:
        self.key = key
        self.sync_time = sync_time
        self.queue: deque = deque()  # of (_Batch, bits_remaining)
        self.on_transmit: Callable[[_Chunk, float], None] = on_transmit

    @property
    def backlog(self) -> float:
        return sum(b for _, b in self.queue)

    def enqueue(self, batch: _Batch, bits: float) -> None:
        self.queue.append((batch, bits))

    def enqueue_chunk(self, chunk: _Chunk) -> None:
        """Requeue a forwarded chunk's slices (the ID_R MAC queue)."""
        for batch, bits in chunk.slices:
            self.queue.append((batch, bits))

    def take(self, max_bits: float) -> Optional[_Chunk]:
        if not self.queue or max_bits <= 0:
            return None
        slices: List[Tuple[_Batch, float]] = []
        remaining = max_bits
        while self.queue and remaining > 1e-9:
            batch, bits = self.queue[0]
            grab = min(bits, remaining)
            slices.append((batch, grab))
            remaining -= grab
            if grab >= bits - 1e-9:
                self.queue.popleft()
            else:
                self.queue[0] = (batch, bits - grab)
        if not slices:
            return None
        return _Chunk(conn_id=slices[0][0].conn_id, slices=slices)


class _TokenRing:
    """Timed-token rotation over the ring's stations.

    The protocol overhead ``Delta`` is charged once per complete rotation
    (as the analysis assumes), so adding stations or traffic can only slow
    every other station down — never speed it up.
    """

    def __init__(
        self,
        ring,
        stations: List[_Station],
        sim: Simulator,
        wake_delay: float = 0.0,
    ) -> None:
        self.ring = ring
        self.stations = stations
        self.sim = sim
        self.parked = True
        self.position = 0
        #: Adversarial token phase: when traffic arrives at an idle ring the
        #: token is assumed to have *just left*, so the first service waits
        #: this long (up to a full rotation).  0 = benign phasing.
        self.wake_delay = wake_delay

    def _advance_gap(self) -> float:
        """Token hand-off latency to the next station."""
        next_pos = (self.position + 1) % len(self.stations)
        # Full rotation overhead lands on the wrap back to station 0.
        return self.ring.overhead if next_pos == 0 else 0.0

    def wake(self) -> None:
        if self.parked:
            self.parked = False
            self.sim.schedule(self.wake_delay, self._visit)

    def _visit(self) -> None:
        if all(st.backlog <= 1e-9 for st in self.stations):
            self.parked = True
            return
        station = self.stations[self.position]
        gap = self._advance_gap()
        self.position = (self.position + 1) % len(self.stations)
        budget_bits = station.sync_time * self.ring.bandwidth
        chunk = station.take(budget_bits)
        if chunk is None:
            self.sim.schedule(gap, self._visit)
            return
        txn = chunk.bits / self.ring.bandwidth
        done_at = txn + self.ring.propagation_delay
        self.sim.schedule(done_at, lambda c=chunk: station.on_transmit(c, self.sim.now))
        self.sim.schedule(txn + gap, self._visit)


class _FifoPort:
    """A FIFO queue drained at the link payload rate."""

    def __init__(
        self,
        rate: float,
        extra_delay: float,
        sim: Simulator,
        forward: Callable[[_Chunk], None],
    ) -> None:
        self.rate = rate
        self.extra_delay = extra_delay
        self.sim = sim
        self.forward = forward
        self.queue: deque = deque()
        self.busy = False

    def enqueue(self, chunk: _Chunk) -> None:
        self.queue.append(chunk)
        if not self.busy:
            self.busy = True
            self._serve()

    def _serve(self) -> None:
        if not self.queue:
            self.busy = False
            return
        chunk = self.queue.popleft()
        txn = chunk.bits / self.rate

        def done(c=chunk):
            self.sim.schedule(self.extra_delay, lambda: self.forward(c))
            self._serve()

        self.sim.schedule(txn, done)


@dataclasses.dataclass(frozen=True)
class PacketSimResult:
    """Observed delays for each connection."""

    max_delay: Dict[str, float]
    mean_delay: Dict[str, float]
    delivered_batches: Dict[str, int]

    def worst_observed(self, conn_id: str) -> float:
        return self.max_delay.get(conn_id, 0.0)


class PacketLevelSimulator:
    """Simulates the data path for a fixed, already-admitted connection set."""

    def __init__(
        self,
        topology: NetworkTopology,
        loads: Sequence[ConnectionLoad],
        network_config: Optional[NetworkConfig] = None,
        adversarial_phase: bool = False,
    ) -> None:
        self.topology = topology
        self.loads = list(loads)
        self.config = network_config or NetworkConfig()
        #: When set, every ring assumes a worst-phase token on wake-up (the
        #: token just left: one full TTRT of dead time before first service)
        #: — closer to the analysis' assumption and a tighter stress of the
        #: bound.
        self.adversarial_phase = adversarial_phase
        self.sim = Simulator()
        self._batches: List[_Batch] = []
        self._rings: Dict[str, _TokenRing] = {}
        self._ports: Dict[str, _FifoPort] = {}
        #: (link_id, conn_id) -> next hop.  Ports are shared across routes
        #: but continuations are not: a chunk leaving a port must follow
        #: *its connection's* route, so the next hop is looked up per chunk
        #: at forward time.
        self._port_next: Dict[Tuple[str, str], Callable[[_Chunk], None]] = {}
        self._dest_station: Dict[str, _Station] = {}
        self._build()

    # ------------------------------------------------------------------

    def _build(self) -> None:
        ring_stations: Dict[str, List[_Station]] = {
            ring_id: [] for ring_id in self.topology.rings
        }

        # ATM fabric: one FIFO per output port a load traverses.  The port
        # object is shared by every connection crossing the link; where a
        # served chunk goes next depends on the chunk's connection, so the
        # forward hook dispatches through ``_port_next``.
        def port_for(name: str, rate: float, extra: float) -> _FifoPort:
            if name not in self._ports:
                self._ports[name] = _FifoPort(
                    rate,
                    extra,
                    self.sim,
                    lambda chunk, link=name: self._port_next[
                        (link, chunk.conn_id)
                    ](chunk),
                )
            return self._ports[name]

        for load in self.loads:
            route = load.route
            conn_id = load.spec.conn_id
            if not route.crosses_backbone:
                # Local: source station delivers straight to the host.
                station = _Station(
                    conn_id,
                    load.h_source,
                    lambda chunk, now, cid=conn_id: self._deliver(chunk, now),
                )
                ring_stations[route.source_ring].append(station)
                self._register_source(load, station, route.source_ring)
                continue

            src_dev = self.topology.devices[route.source_device]
            dst_dev = self.topology.devices[route.dest_device]
            path = route.switch_path

            # Destination-side station (the ID's allocation on ring R).
            dest_station = _Station(
                f"{conn_id}@{dst_dev.device_id}",
                load.h_dest,
                lambda chunk, now: self._deliver(chunk, now),
            )
            ring_stations[route.dest_ring].append(dest_station)
            self._dest_station[conn_id] = dest_station

            # Chain construction, back to front.
            dest_ring = self.topology.rings[route.dest_ring]

            def into_dest_ring(chunk, cid=conn_id, dev=dst_dev, ring_id=route.dest_ring):
                delay = (
                    dev.input_port_delay
                    + dev.frame_processing_delay
                    + dev.frame_switch_delay
                )
                def arrive(c=chunk):
                    self._dest_station[cid].enqueue_chunk(c)
                    self._rings[ring_id].wake()
                self.sim.schedule(delay, arrive)

            # Last switch port -> downlink to the destination device.
            last_switch = path[-1]
            downlink = self.topology.downlink(last_switch, dst_dev.device_id)
            next_stage = port_for(
                downlink.link_id,
                downlink.payload_rate,
                self.config.port_latency + downlink.propagation_delay,
            )
            self._port_next[(downlink.link_id, conn_id)] = into_dest_ring

            # Inter-switch ports, from the end back to the first switch.
            for idx in range(len(path) - 2, -1, -1):
                link = self.topology.switch_link(path[idx], path[idx + 1])
                switch = self.topology.switches[path[idx + 1]]
                stage_after = next_stage

                def through_fabric(chunk, sw=switch, nxt=stage_after):
                    self.sim.schedule(sw.fabric_delay, lambda c=chunk: nxt.enqueue(c))

                next_stage = port_for(
                    link.link_id,
                    link.payload_rate,
                    self.config.port_latency + link.propagation_delay,
                )
                self._port_next[(link.link_id, conn_id)] = through_fabric

            first_switch_stage = next_stage
            first_switch = self.topology.switches[path[0]]

            uplink = src_dev.uplink
            def into_backbone(chunk, sw=first_switch, nxt=first_switch_stage):
                self.sim.schedule(sw.fabric_delay, lambda c=chunk: nxt.enqueue(c))

            uplink_port = port_for(
                uplink.link_id,
                uplink.payload_rate,
                self.config.port_latency + uplink.propagation_delay,
            )
            self._port_next[(uplink.link_id, conn_id)] = into_backbone

            def into_id(chunk, now, dev=src_dev, port=uplink_port):
                delay = (
                    dev.input_port_delay
                    + dev.frame_switch_delay
                    + dev.frame_processing_delay
                )
                self.sim.schedule(delay, lambda c=chunk: port.enqueue(c))

            src_station = _Station(conn_id, load.h_source, into_id)
            ring_stations[route.source_ring].append(src_station)
            self._register_source(load, src_station, route.source_ring)

        # Build the token rings.
        for ring_id, stations in ring_stations.items():
            ring = self.topology.rings[ring_id]
            wake_delay = ring.ttrt if self.adversarial_phase else 0.0
            self._rings[ring_id] = _TokenRing(
                ring, stations, self.sim, wake_delay=wake_delay
            )

    def _register_source(self, load: ConnectionLoad, station: _Station, ring_id: str):
        if not hasattr(self, "_sources"):
            self._sources: List[Tuple[ConnectionLoad, _Station, str]] = []
        self._sources.append((load, station, ring_id))

    def _deliver(self, chunk: _Chunk, now: float) -> None:
        for batch, bits in chunk.slices:
            batch.delivered += bits
            if batch.delivered >= batch.bits - 1e-6 and batch.completion_time is None:
                batch.completion_time = now

    # ------------------------------------------------------------------

    def run(self, duration: float) -> PacketSimResult:
        """Inject worst-case source trajectories and run for ``duration``."""
        batch_counter = 0
        for load, station, ring_id in self._sources:
            for when, bits in load.spec.traffic.worst_case_arrivals(duration):
                if when > duration:
                    break
                batch = _Batch(batch_counter, load.spec.conn_id, when, bits)
                batch_counter += 1
                self._batches.append(batch)

                def inject(b=batch, st=station, rid=ring_id):
                    st.enqueue(b, b.bits)
                    self._rings[rid].wake()

                self.sim.schedule_at(when, inject)
        # Drain: run past the duration so queued bits complete.
        self.sim.run_until(duration * 3 + 1.0)

        max_delay: Dict[str, float] = {}
        sum_delay: Dict[str, float] = {}
        count: Dict[str, int] = {}
        for batch in self._batches:
            if batch.completion_time is None:
                continue
            d = batch.completion_time - batch.arrival_time
            cid = batch.conn_id
            max_delay[cid] = max(max_delay.get(cid, 0.0), d)
            sum_delay[cid] = sum_delay.get(cid, 0.0) + d
            count[cid] = count.get(cid, 0) + 1
        mean_delay = {cid: sum_delay[cid] / count[cid] for cid in count}
        return PacketSimResult(
            max_delay=max_delay, mean_delay=mean_delay, delivered_batches=count
        )


