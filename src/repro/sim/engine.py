"""A minimal deterministic discrete-event simulation kernel.

Events are ``(time, sequence, callback)`` triples in a binary heap; the
sequence number makes simultaneous events fire in scheduling order, so runs
are exactly reproducible.  Callbacks may schedule further events and may
cancel previously scheduled ones.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import math
from typing import Callable, Optional

from repro.errors import SimulationError


@dataclasses.dataclass(order=True)
class Event:
    """A scheduled event.  Ordered by (time, seq) for the heap."""

    time: float
    seq: int
    callback: Callable[[], None] = dataclasses.field(compare=False)
    cancelled: bool = dataclasses.field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when it surfaces."""
        self.cancelled = True


class Simulator:
    """The event loop."""

    def __init__(self) -> None:
        self._heap = []
        self._seq = itertools.count()
        self.now = 0.0
        self._processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0 or not math.isfinite(delay):
            raise SimulationError(f"invalid event delay {delay!r}")
        event = Event(self.now + delay, next(self._seq), callback)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, when: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute time ``when`` (>= now)."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule in the past ({when} < {self.now})"
            )
        return self.schedule(when - self.now, callback)

    @property
    def events_processed(self) -> int:
        return self._processed

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event (None if the queue is empty)."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty.

        Cancelled events are purged lazily (the same sweep as
        :meth:`peek_time`): they never count toward
        :attr:`events_processed` and never advance :attr:`now`.
        """
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        if event.time < self.now - 1e-12:
            raise SimulationError("event queue went backwards in time")
        self.now = max(self.now, event.time)
        self._processed += 1
        event.callback()
        return True

    def run_until(self, t_end: float, max_events: int = 50_000_000) -> None:
        """Run events up to (and including) time ``t_end``."""
        count = 0
        while True:
            nxt = self.peek_time()
            if nxt is None or nxt > t_end:
                break
            self.step()
            count += 1
            if count > max_events:
                raise SimulationError("event budget exhausted (runaway model?)")
        self.now = max(self.now, t_end)

    def run(self, max_events: int = 50_000_000) -> None:
        """Run until the event queue drains."""
        count = 0
        while self.step():
            count += 1
            if count > max_events:
                raise SimulationError("event budget exhausted (runaway model?)")
