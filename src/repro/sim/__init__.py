"""Discrete-event simulation: the evaluation harness of Section 6.

* :mod:`repro.sim.engine` — a small deterministic event-queue kernel (built
  from scratch; no external DES dependency is available offline).
* :mod:`repro.sim.random` — named, independently seeded random streams so
  every experiment is reproducible.
* :mod:`repro.sim.metrics` — counters and interval statistics.
* :mod:`repro.sim.connection_sim` — the paper's experiment: Poisson
  connection requests with exponential lifetimes against the CAC, measuring
  admission probability (Figures 7 and 8).
* :mod:`repro.sim.packet_sim` — a packet/cell-level simulator of the data
  path used to validate the analytic worst-case bounds.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.random import RandomStreams
from repro.sim.metrics import RunningStats, SimulationMetrics, SurvivabilityMetrics
from repro.sim.connection_sim import ConnectionSimConfig, ConnectionSimulator, SimResult

__all__ = [
    "ConnectionSimConfig",
    "ConnectionSimulator",
    "Event",
    "RandomStreams",
    "RunningStats",
    "SimResult",
    "SimulationMetrics",
    "Simulator",
    "SurvivabilityMetrics",
]
