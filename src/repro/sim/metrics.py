"""Statistics collection for the simulations."""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Tuple


class RunningStats:
    """Streaming mean/variance (Welford) with min/max tracking."""

    def __init__(self):
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        self.n += 1
        delta = value - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self._mean if self.n else math.nan

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else math.nan

    @property
    def stddev(self) -> float:
        v = self.variance
        return math.sqrt(v) if v == v else math.nan  # NaN-safe

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation CI for the mean (95% by default)."""
        if self.n < 2:
            return (math.nan, math.nan)
        half = z * self.stddev / math.sqrt(self.n)
        return (self.mean - half, self.mean + half)


@dataclasses.dataclass
class SimulationMetrics:
    """Counters gathered during a connection-level simulation run."""

    n_requests: int = 0
    n_admitted: int = 0
    n_rejected_cac: int = 0
    n_blocked_no_host: int = 0
    n_departures: int = 0
    #: Rejections split by cause: ring synchronous-bandwidth exhaustion
    #: ("no synchronous bandwidth available") vs deadline infeasibility.
    n_rejected_no_bandwidth: int = 0
    n_rejected_infeasible: int = 0
    #: Time-weighted number of active connections.
    _active_area: float = 0.0
    _last_change: float = 0.0
    _active_now: int = 0
    #: Delay-bound statistics of admitted connections.
    delay_bounds: RunningStats = dataclasses.field(default_factory=RunningStats)
    #: Granted H_S statistics (seconds of synchronous time).
    grants: RunningStats = dataclasses.field(default_factory=RunningStats)

    def record_active_change(self, now: float, delta: int) -> None:
        self._active_area += self._active_now * (now - self._last_change)
        self._last_change = now
        self._active_now += delta

    def mean_active(self, now: float) -> float:
        area = self._active_area + self._active_now * (now - self._last_change)
        return area / now if now > 0 else 0.0

    @property
    def admission_probability(self) -> float:
        denom = self.n_admitted + self.n_rejected_cac
        return self.n_admitted / denom if denom else math.nan

    @property
    def admission_probability_including_blocked(self) -> float:
        if self.n_requests == 0:
            return math.nan
        return self.n_admitted / self.n_requests
