"""Statistics collection for the simulations."""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional, Tuple


class RunningStats:
    """Streaming mean/variance (Welford) with min/max tracking."""

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        self.n += 1
        delta = value - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self._mean if self.n else math.nan

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else math.nan

    @property
    def stddev(self) -> float:
        v = self.variance
        return math.sqrt(v) if v == v else math.nan  # NaN-safe

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation CI for the mean (95% by default)."""
        if self.n < 2:
            return (math.nan, math.nan)
        half = z * self.stddev / math.sqrt(self.n)
        return (self.mean - half, self.mean + half)


@dataclasses.dataclass
class SurvivabilityMetrics:
    """Counters gathered while faults are injected into a run.

    A *displaced* connection was admitted, then torn down by a link/node
    failure; it resolves as exactly one of reconnected (re-admitted by the
    retry machinery), abandoned (retry budget exhausted) or expired (its
    lifetime elapsed while disconnected).
    """

    n_link_failures: int = 0
    n_node_failures: int = 0
    n_repairs: int = 0
    n_displaced: int = 0
    n_reconnected: int = 0
    n_abandoned: int = 0
    n_expired: int = 0
    #: Total re-admission attempts (successful or not).
    n_retry_attempts: int = 0
    #: Seconds from displacement to successful re-admission.
    time_to_recover: RunningStats = dataclasses.field(default_factory=RunningStats)
    #: Attempts consumed per successful reconnection (1 = first try).
    retries_per_reconnect: RunningStats = dataclasses.field(
        default_factory=RunningStats
    )

    @property
    def n_resolved(self) -> int:
        return self.n_reconnected + self.n_abandoned + self.n_expired

    @property
    def survival_rate(self) -> float:
        """Reconnected fraction of resolved displacements (expiries count
        against survival: the connection never got its path back)."""
        return self.n_reconnected / self.n_resolved if self.n_resolved else math.nan

    @property
    def mean_time_to_recover(self) -> float:
        return self.time_to_recover.mean

    def summary(self) -> Dict[str, float]:
        """Plain-float snapshot (deterministic-replay comparisons)."""
        return {
            "n_link_failures": float(self.n_link_failures),
            "n_node_failures": float(self.n_node_failures),
            "n_repairs": float(self.n_repairs),
            "n_displaced": float(self.n_displaced),
            "n_reconnected": float(self.n_reconnected),
            "n_abandoned": float(self.n_abandoned),
            "n_expired": float(self.n_expired),
            "n_retry_attempts": float(self.n_retry_attempts),
            "survival_rate": self.survival_rate,
            "mean_time_to_recover": self.time_to_recover.mean,
            "mean_retries_per_reconnect": self.retries_per_reconnect.mean,
        }

    def format(self) -> str:
        lines = [
            "Survivability:",
            f"  failures:    {self.n_link_failures} link, "
            f"{self.n_node_failures} node ({self.n_repairs} repairs)",
            f"  displaced:   {self.n_displaced}",
            f"  reconnected: {self.n_reconnected}  abandoned: "
            f"{self.n_abandoned}  expired: {self.n_expired}",
        ]
        if self.n_resolved:
            lines.append(f"  survival rate: {self.survival_rate:.3f}")
        if self.time_to_recover.n:
            lines.append(
                f"  mean time-to-recover: {self.time_to_recover.mean:.3f} s "
                f"(max {self.time_to_recover.maximum:.3f} s)"
            )
        if self.retries_per_reconnect.n:
            lines.append(
                "  mean retries per reconnect: "
                f"{self.retries_per_reconnect.mean:.2f}"
            )
        return "\n".join(lines)


@dataclasses.dataclass
class SimulationMetrics:
    """Counters gathered during a connection-level simulation run."""

    n_requests: int = 0
    n_admitted: int = 0
    n_rejected_cac: int = 0
    n_blocked_no_host: int = 0
    n_departures: int = 0
    #: Rejections split by cause: ring synchronous-bandwidth exhaustion
    #: ("no synchronous bandwidth available") vs deadline infeasibility.
    n_rejected_no_bandwidth: int = 0
    n_rejected_infeasible: int = 0
    #: Requests rejected because the (fault-degraded) topology had no route.
    n_rejected_no_route: int = 0
    #: Time-weighted number of active connections.
    _active_area: float = 0.0
    _last_change: float = 0.0
    _active_now: int = 0
    #: Delay-bound statistics of admitted connections.
    delay_bounds: RunningStats = dataclasses.field(default_factory=RunningStats)
    #: Granted H_S statistics (seconds of synchronous time).
    grants: RunningStats = dataclasses.field(default_factory=RunningStats)
    #: Fault/retry counters; None unless the run injects faults.
    survivability: Optional[SurvivabilityMetrics] = None

    def record_active_change(self, now: float, delta: int) -> None:
        self._active_area += self._active_now * (now - self._last_change)
        self._last_change = now
        self._active_now += delta

    def mean_active(self, now: float) -> float:
        area = self._active_area + self._active_now * (now - self._last_change)
        return area / now if now > 0 else 0.0

    @property
    def admission_probability(self) -> float:
        denom = self.n_admitted + self.n_rejected_cac
        return self.n_admitted / denom if denom else math.nan

    @property
    def admission_probability_including_blocked(self) -> float:
        if self.n_requests == 0:
            return math.nan
        return self.n_admitted / self.n_requests
