"""Declarative topology specs and generator families.

:class:`TopologySpec` describes any FDDI-ATM-FDDI network — typed
ring/switch/device entries, explicit ring -> switch attachment, arbitrary
backbone edge lists — and lowers to a live
:class:`~repro.network.topology.NetworkTopology` via :meth:`TopologySpec.build`.
:mod:`repro.topo.generators` provides the named structural families
(paper-triangle, line, ring-of-switches, star, partial mesh,
multi-ring-per-switch) the fuzz and experiment layers sample.
"""

from repro.topo.spec import (
    BackboneLinkSpec,
    DeviceSpec,
    RingSpec,
    SwitchSpec,
    TopologySpec,
)

__all__ = [
    "BackboneLinkSpec",
    "DeviceSpec",
    "RingSpec",
    "SwitchSpec",
    "TopologySpec",
]
