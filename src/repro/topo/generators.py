"""Generator families over :class:`~repro.topo.spec.TopologySpec`.

Each generator emits a fully-validated spec for one structural family.
Naming follows the reference mesh (``ring<i>``, ``host<i>-<j>``,
``id<i>``, ``s<i>``) so hosts generated here are addressable by the same
conventions the fuzz and shrink machinery already uses.  All generators
are pure functions of their arguments — no randomness — so fuzz seeds
stay the single source of nondeterminism.

Families and the analysis regimes they exercise:

``paper_triangle``
    The Figure-1 reference network (pairwise mesh); one backbone hop.
``line``
    Switches in a chain; routes cross up to ``n - 1`` backbone hops but
    the port-dependency graph stays feed-forward.
``ring_of_switches``
    Switches in a cycle.  Bidirectional cycles stay feed-forward per
    shortest-path routing; the unidirectional variant forces every
    route the long way round and creates genuinely cyclic port
    interference — the fixed-point regime.
``star``
    All rings' switches uplink into one hub; two hops everywhere, heavy
    sharing on hub ports.
``partial_mesh``
    A cycle plus deterministic chords; mixed hop counts.
``multi_ring_per_switch``
    Several rings bridged into each switch; exercises same-switch
    cross-ring routes with an empty backbone path.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Set, Tuple

from repro.errors import TopologyError
from repro.topo.spec import (
    BackboneLinkSpec,
    DeviceSpec,
    RingSpec,
    SwitchSpec,
    TopologySpec,
)


def _rings(n: int, hosts_per_ring: int) -> Tuple[RingSpec, ...]:
    return tuple(
        RingSpec(
            ring_id=f"ring{i}",
            n_hosts=hosts_per_ring,
            host_prefix=f"host{i}-",
        )
        for i in range(1, n + 1)
    )


def _one_switch_per_ring(
    n: int,
) -> Tuple[Tuple[SwitchSpec, ...], Tuple[DeviceSpec, ...]]:
    switches = tuple(SwitchSpec(f"s{i}") for i in range(1, n + 1))
    devices = tuple(
        DeviceSpec(device_id=f"id{i}", ring_id=f"ring{i}", switch_id=f"s{i}")
        for i in range(1, n + 1)
    )
    return switches, devices


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise TopologyError(message)


def paper_triangle(
    n_rings: int = 3, hosts_per_ring: int = 4
) -> TopologySpec:
    """The reference pairwise mesh (Figure 1 for ``n_rings = 3``)."""
    _require(n_rings >= 1, "paper_triangle needs at least 1 ring")
    switches, devices = _one_switch_per_ring(n_rings)
    links = tuple(
        BackboneLinkSpec(f"s{i}", f"s{j}")
        for i in range(1, n_rings + 1)
        for j in range(i + 1, n_rings + 1)
    )
    spec = TopologySpec(
        rings=_rings(n_rings, hosts_per_ring),
        switches=switches,
        devices=devices,
        links=links,
    )
    spec.validate()
    return spec


def line(n_rings: int, hosts_per_ring: int = 2) -> TopologySpec:
    """Switches in a chain: ``s1 - s2 - ... - sN`` (multi-hop, acyclic)."""
    _require(n_rings >= 2, "line needs at least 2 rings")
    switches, devices = _one_switch_per_ring(n_rings)
    links = tuple(
        BackboneLinkSpec(f"s{i}", f"s{i + 1}") for i in range(1, n_rings)
    )
    spec = TopologySpec(
        rings=_rings(n_rings, hosts_per_ring),
        switches=switches,
        devices=devices,
        links=links,
    )
    spec.validate()
    return spec


def ring_of_switches(
    n_rings: int, hosts_per_ring: int = 2, unidirectional: bool = False
) -> TopologySpec:
    """Switches in a cycle; ``unidirectional`` forces cyclic interference."""
    _require(n_rings >= 3, "ring_of_switches needs at least 3 rings")
    switches, devices = _one_switch_per_ring(n_rings)
    links = tuple(
        BackboneLinkSpec(
            f"s{i}",
            f"s{i % n_rings + 1}",
            bidirectional=not unidirectional,
        )
        for i in range(1, n_rings + 1)
    )
    spec = TopologySpec(
        rings=_rings(n_rings, hosts_per_ring),
        switches=switches,
        devices=devices,
        links=links,
    )
    spec.validate()
    return spec


def star(n_rings: int, hosts_per_ring: int = 2) -> TopologySpec:
    """Every ring's switch uplinks into one hub switch ``hub``."""
    _require(n_rings >= 2, "star needs at least 2 rings")
    leaf_switches, devices = _one_switch_per_ring(n_rings)
    switches = leaf_switches + (SwitchSpec("hub"),)
    links = tuple(
        BackboneLinkSpec(f"s{i}", "hub") for i in range(1, n_rings + 1)
    )
    spec = TopologySpec(
        rings=_rings(n_rings, hosts_per_ring),
        switches=switches,
        devices=devices,
        links=links,
    )
    spec.validate()
    return spec


def partial_mesh(
    n_rings: int, hosts_per_ring: int = 2, chord_stride: int = 2
) -> TopologySpec:
    """A bidirectional cycle plus deterministic chords ``s_i - s_{i+k}``.

    ``chord_stride`` is ``k``; strides that would duplicate a cycle edge
    or a chord's mirror are skipped, so the result is valid for every
    ``k >= 2``.
    """
    _require(n_rings >= 4, "partial_mesh needs at least 4 rings")
    _require(chord_stride >= 2, "chord_stride must be >= 2")
    switches, devices = _one_switch_per_ring(n_rings)
    seen: Set[FrozenSet[int]] = set()
    links: List[BackboneLinkSpec] = []
    for i in range(1, n_rings + 1):
        j = i % n_rings + 1
        key = frozenset((i, j))
        if key not in seen:
            seen.add(key)
            links.append(BackboneLinkSpec(f"s{i}", f"s{j}"))
    for i in range(1, n_rings + 1):
        j = (i - 1 + chord_stride) % n_rings + 1
        if i == j:
            continue
        key = frozenset((i, j))
        if key not in seen:
            seen.add(key)
            links.append(BackboneLinkSpec(f"s{i}", f"s{j}"))
    spec = TopologySpec(
        rings=_rings(n_rings, hosts_per_ring),
        switches=switches,
        devices=devices,
        links=tuple(links),
    )
    spec.validate()
    return spec


def multi_ring_per_switch(
    n_switches: int, rings_per_switch: int = 2, hosts_per_ring: int = 2
) -> TopologySpec:
    """``rings_per_switch`` rings bridged into each of ``n_switches``
    switches, switches joined in a chain (one switch = purely local
    backbone)."""
    _require(n_switches >= 1, "multi_ring_per_switch needs >= 1 switch")
    _require(rings_per_switch >= 1, "need >= 1 ring per switch")
    n_rings = n_switches * rings_per_switch
    switches = tuple(SwitchSpec(f"s{k}") for k in range(1, n_switches + 1))
    devices = tuple(
        DeviceSpec(
            device_id=f"id{i}",
            ring_id=f"ring{i}",
            switch_id=f"s{(i - 1) // rings_per_switch + 1}",
        )
        for i in range(1, n_rings + 1)
    )
    links = tuple(
        BackboneLinkSpec(f"s{k}", f"s{k + 1}") for k in range(1, n_switches)
    )
    spec = TopologySpec(
        rings=_rings(n_rings, hosts_per_ring),
        switches=switches,
        devices=devices,
        links=links,
    )
    spec.validate()
    return spec


#: name -> (generator, small deterministic argument grid for fuzz/CI).
#: Grid entries are (args, kwargs) pairs; the fuzz generator indexes this
#: registry by seed, so the order is append-only.
FAMILIES: Dict[str, Callable[..., TopologySpec]] = {
    "paper_triangle": paper_triangle,
    "line": line,
    "ring_of_switches": ring_of_switches,
    "star": star,
    "partial_mesh": partial_mesh,
    "multi_ring_per_switch": multi_ring_per_switch,
}
