"""Declarative topology layer: a serializable spec that lowers to
:class:`~repro.network.topology.NetworkTopology` through one builder.

The paper's Figure-1 network is one point in a much larger space: any set
of FDDI rings, each bridged by exactly one interface device to some ATM
switch, with an arbitrary directed backbone edge list joining the
switches.  A :class:`TopologySpec` names that space declaratively — typed
ring/switch/device entries, explicit ring -> switch attachment, per-link
rates and propagation delays — and :meth:`TopologySpec.build` lowers it to
the live object graph every engine consumes.

Design rules (same as :mod:`repro.scenario.spec`):

* every entry is a frozen, scalar-field dataclass, so specs hash, compare
  structurally and round-trip through the strict scenario codec;
* per-entry parameters are ``Optional`` and default to the values a
  :class:`~repro.config.NetworkConfig` supplies at build time, so a spec
  only records what deviates from the reference parameters;
* cheap per-entry validation happens at construction; cross-entry
  structural validation (dangling references, unbridged rings, backbone
  connectivity) is :meth:`TopologySpec.validate`, which the scenario-spec
  layer calls before a spec is ever written to disk.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

from repro.atm.switch import AtmSwitch
from repro.config import NetworkConfig
from repro.errors import TopologyError
from repro.fddi.ring import FDDIRing
from repro.interface_device.device import InterfaceDevice
from repro.network.topology import NetworkTopology


@dataclasses.dataclass(frozen=True)
class RingSpec:
    """One FDDI ring and its attached host population.

    ``None`` parameters inherit from the build-time
    :class:`~repro.config.NetworkConfig` defaults.  Host stations are named
    ``<host_prefix><j>`` for ``j`` in ``1..n_hosts``; the default prefix
    ``<ring_id>-h`` keeps names unique across rings, and the generator
    families override it to the paper's ``host<i>-<j>`` convention.
    """

    ring_id: str
    n_hosts: int = 4
    ttrt: Optional[float] = None
    bandwidth: Optional[float] = None
    overhead: Optional[float] = None
    propagation: Optional[float] = None
    host_prefix: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.ring_id:
            raise TopologyError("ring_id must be non-empty")
        if self.n_hosts < 1:
            raise TopologyError(f"ring {self.ring_id!r}: need at least one host")
        for label in ("ttrt", "bandwidth"):
            value = getattr(self, label)
            if value is not None and value <= 0:
                raise TopologyError(f"ring {self.ring_id!r}: {label} must be positive")
        for label in ("overhead", "propagation"):
            value = getattr(self, label)
            if value is not None and value < 0:
                raise TopologyError(
                    f"ring {self.ring_id!r}: {label} must be non-negative"
                )

    def host_ids(self) -> List[str]:
        """The ring's host station names, in attachment order."""
        prefix = self.host_prefix if self.host_prefix is not None else f"{self.ring_id}-h"
        return [f"{prefix}{j}" for j in range(1, self.n_hosts + 1)]


@dataclasses.dataclass(frozen=True)
class SwitchSpec:
    """One ATM backbone switch."""

    switch_id: str
    fabric_delay: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.switch_id:
            raise TopologyError("switch_id must be non-empty")
        if self.fabric_delay is not None and self.fabric_delay < 0:
            raise TopologyError(
                f"switch {self.switch_id!r}: fabric_delay must be non-negative"
            )


@dataclasses.dataclass(frozen=True)
class DeviceSpec:
    """One interface device: the explicit ring -> switch attachment."""

    device_id: str
    ring_id: str
    switch_id: str
    uplink_rate: Optional[float] = None
    propagation: Optional[float] = None

    def __post_init__(self) -> None:
        for label in ("device_id", "ring_id", "switch_id"):
            if not getattr(self, label):
                raise TopologyError(f"device entry: {label} must be non-empty")
        if self.uplink_rate is not None and self.uplink_rate <= 0:
            raise TopologyError(
                f"device {self.device_id!r}: uplink_rate must be positive"
            )
        if self.propagation is not None and self.propagation < 0:
            raise TopologyError(
                f"device {self.device_id!r}: propagation must be non-negative"
            )


@dataclasses.dataclass(frozen=True)
class BackboneLinkSpec:
    """One backbone edge (``bidirectional`` creates both directed links)."""

    a: str
    b: str
    rate: Optional[float] = None
    propagation: Optional[float] = None
    bidirectional: bool = True

    def __post_init__(self) -> None:
        if not self.a or not self.b:
            raise TopologyError("backbone link endpoints must be non-empty")
        if self.a == self.b:
            raise TopologyError(f"backbone link {self.a!r}: self-loops not allowed")
        if self.rate is not None and self.rate <= 0:
            raise TopologyError(f"link {self.a}->{self.b}: rate must be positive")
        if self.propagation is not None and self.propagation < 0:
            raise TopologyError(
                f"link {self.a}->{self.b}: propagation must be non-negative"
            )

    def directed_pairs(self) -> List[Tuple[str, str]]:
        return [(self.a, self.b), (self.b, self.a)] if self.bidirectional else [
            (self.a, self.b)
        ]


@dataclasses.dataclass(frozen=True)
class TopologySpec:
    """A complete declarative network description.

    The entry lists are order-significant only for host naming and build
    determinism; semantics are purely structural.  ``validate()`` checks
    everything the builder would reject, plus backbone strong connectivity,
    without constructing any live object.
    """

    rings: Tuple[RingSpec, ...]
    switches: Tuple[SwitchSpec, ...]
    devices: Tuple[DeviceSpec, ...]
    links: Tuple[BackboneLinkSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.rings:
            raise TopologyError("a topology needs at least one ring")
        if not self.switches:
            raise TopologyError("a topology needs at least one switch")

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Structural completeness, or :class:`TopologyError`."""
        ring_ids = [r.ring_id for r in self.rings]
        switch_ids = [s.switch_id for s in self.switches]
        device_ids = [d.device_id for d in self.devices]
        for label, ids in (
            ("ring", ring_ids),
            ("switch", switch_ids),
            ("device", device_ids),
        ):
            seen: Set[str] = set()
            for entry_id in ids:
                if entry_id in seen:
                    raise TopologyError(f"duplicate {label} id {entry_id!r}")
                seen.add(entry_id)

        hosts: Set[str] = set()
        for ring in self.rings:
            for host_id in ring.host_ids():
                if host_id in hosts:
                    raise TopologyError(f"duplicate host id {host_id!r}")
                hosts.add(host_id)

        switch_set = set(switch_ids)
        bridged: Dict[str, str] = {}
        for dev in self.devices:
            if dev.ring_id not in set(ring_ids):
                raise TopologyError(
                    f"device {dev.device_id!r}: unknown ring {dev.ring_id!r}"
                )
            if dev.switch_id not in switch_set:
                raise TopologyError(
                    f"device {dev.device_id!r}: unknown switch {dev.switch_id!r}"
                )
            if dev.ring_id in bridged:
                raise TopologyError(
                    f"ring {dev.ring_id!r} bridged by both "
                    f"{bridged[dev.ring_id]!r} and {dev.device_id!r}"
                )
            bridged[dev.ring_id] = dev.device_id
        for ring_id in ring_ids:
            if ring_id not in bridged:
                raise TopologyError(f"ring {ring_id!r} has no interface device")

        directed: Set[Tuple[str, str]] = set()
        for link in self.links:
            for src, dst in link.directed_pairs():
                if src not in switch_set or dst not in switch_set:
                    raise TopologyError(
                        f"backbone link references unknown switch in "
                        f"({src!r}, {dst!r})"
                    )
                if (src, dst) in directed:
                    raise TopologyError(f"duplicate backbone link {src}->{dst}")
                directed.add((src, dst))

        if len(switch_set) > 1 and not _strongly_connected(switch_set, directed):
            raise TopologyError("backbone is not strongly connected")

    # ------------------------------------------------------------------
    # Lowering
    # ------------------------------------------------------------------

    def build(self, defaults: Optional[NetworkConfig] = None) -> NetworkTopology:
        """Lower the spec to a live :class:`NetworkTopology`.

        ``defaults`` supplies every parameter an entry leaves ``None``
        (and the device/port latencies, which are global knobs).  The
        result is validated before it is returned.
        """
        self.validate()
        cfg = defaults if defaults is not None else NetworkConfig()
        topo = NetworkTopology()
        for ring in self.rings:
            topo.add_ring(
                FDDIRing(
                    ring_id=ring.ring_id,
                    ttrt=ring.ttrt if ring.ttrt is not None else cfg.ttrt,
                    bandwidth=(
                        ring.bandwidth
                        if ring.bandwidth is not None
                        else cfg.fddi_bandwidth
                    ),
                    overhead=(
                        ring.overhead
                        if ring.overhead is not None
                        else cfg.ring_overhead
                    ),
                    propagation_delay=(
                        ring.propagation
                        if ring.propagation is not None
                        else cfg.ring_propagation
                    ),
                )
            )
            for host_id in ring.host_ids():
                topo.add_host(host_id, ring.ring_id)
        for switch in self.switches:
            topo.add_switch(
                AtmSwitch(
                    switch.switch_id,
                    fabric_delay=(
                        switch.fabric_delay
                        if switch.fabric_delay is not None
                        else cfg.switch_fabric_delay
                    ),
                    port_buffer_bits=cfg.port_buffer_bits,
                    port_latency=cfg.port_latency,
                )
            )
        for dev in self.devices:
            topo.add_device(
                InterfaceDevice(
                    device_id=dev.device_id,
                    ring_id=dev.ring_id,
                    input_port_delay=cfg.id_input_port_delay,
                    frame_switch_delay=cfg.id_frame_switch_delay,
                    frame_processing_delay=cfg.id_frame_processing_delay,
                    port_buffer_bits=cfg.port_buffer_bits,
                    port_latency=cfg.port_latency,
                ),
                switch_id=dev.switch_id,
                uplink_rate=(
                    dev.uplink_rate
                    if dev.uplink_rate is not None
                    else cfg.atm_link_rate
                ),
                link_propagation=(
                    dev.propagation
                    if dev.propagation is not None
                    else cfg.link_propagation
                ),
            )
        for link in self.links:
            topo.connect_switches(
                link.a,
                link.b,
                rate=link.rate if link.rate is not None else cfg.atm_link_rate,
                propagation_delay=(
                    link.propagation
                    if link.propagation is not None
                    else cfg.link_propagation
                ),
                bidirectional=link.bidirectional,
            )
        topo.validate()
        return topo

    # ------------------------------------------------------------------
    # Calibration helpers
    # ------------------------------------------------------------------

    def backbone_capacity(self, defaults: Optional[NetworkConfig] = None) -> float:
        """Aggregate undirected backbone capacity, bits/second.

        The offered-load calibration generalizes the paper's
        ``U = (lambda / (n_links mu)) rho / C`` by replacing
        ``n_links * C`` with the sum of undirected backbone link rates.
        Single-switch topologies have no inter-switch links; there the
        bottleneck shared resources are the device uplinks, so half the
        aggregate uplink rate (each connection crosses one uplink and one
        downlink) stands in.
        """
        cfg = defaults if defaults is not None else NetworkConfig()
        total = 0.0
        for link in self.links:
            total += link.rate if link.rate is not None else cfg.atm_link_rate
        if total > 0.0:
            return total
        uplinks = 0.0
        for dev in self.devices:
            uplinks += (
                dev.uplink_rate if dev.uplink_rate is not None else cfg.atm_link_rate
            )
        return uplinks / 2.0 if uplinks > 0.0 else cfg.atm_link_rate

    # ------------------------------------------------------------------
    # Lookup helpers (used by the fuzz generator and experiments)
    # ------------------------------------------------------------------

    @property
    def n_rings(self) -> int:
        return len(self.rings)

    @property
    def n_switches(self) -> int:
        return len(self.switches)

    def ring(self, ring_id: str) -> RingSpec:
        for ring in self.rings:
            if ring.ring_id == ring_id:
                return ring
        raise TopologyError(f"unknown ring {ring_id!r}")

    def all_hosts(self) -> Dict[str, List[str]]:
        """ring_id -> host names, without building anything."""
        return {ring.ring_id: ring.host_ids() for ring in self.rings}


def _strongly_connected(
    nodes: Set[str], edges: Set[Tuple[str, str]]
) -> bool:
    """Strong connectivity via forward + reverse reachability (no deps)."""
    fwd: Dict[str, List[str]] = {n: [] for n in nodes}
    rev: Dict[str, List[str]] = {n: [] for n in nodes}
    for src, dst in edges:
        fwd[src].append(dst)
        rev[dst].append(src)
    start = next(iter(sorted(nodes)))
    for adjacency in (fwd, rev):
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for nxt in adjacency[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        if seen != nodes:
            return False
    return True
