"""End-of-run survivability audit: no leaks, no broken contracts.

After a fault-injection run the controller must be indistinguishable from
one that simply admitted the surviving connection set: every ring ledger
equals the sum of the recorded allocations (zero leaked synchronous
bandwidth — releases and re-admissions fully balanced), and every
surviving connection still meets its deadline on the *current* topology.
ATM ports and interface devices hold no per-connection state (the delay
analysis recomputes their envelopes from the live connection set), so the
ring ledgers plus the delay check cover the entire resource surface.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.core.cac import AdmissionController
from repro.errors import ReproError
from repro.units import MS_PER_S

#: Ledger discrepancies below this (seconds of synchronous time) are
#: floating-point noise, not leaks.
LEAK_TOLERANCE = 1e-9


@dataclasses.dataclass(frozen=True)
class SurvivabilityAudit:
    """Outcome of :func:`audit_controller`."""

    #: ring_id -> ledger total minus recorded allocations (should be ~0).
    ring_leaks: Dict[str, float]
    #: conn_id -> delay overrun in seconds (delay bound minus deadline).
    deadline_violations: Dict[str, float]
    #: Structural problems (e.g. the delay analysis diverged).
    errors: List[str]
    n_connections: int

    @property
    def leaked_sync_time(self) -> float:
        """Largest absolute per-ring ledger discrepancy, seconds."""
        return max((abs(v) for v in self.ring_leaks.values()), default=0.0)

    @property
    def ok(self) -> bool:
        return (
            self.leaked_sync_time <= LEAK_TOLERANCE
            and not self.deadline_violations
            and not self.errors
        )

    def format(self) -> str:
        lines = [
            f"Survivability audit over {self.n_connections} live connections: "
            + ("PASS" if self.ok else "FAIL")
        ]
        lines.append(
            f"  max ring-ledger discrepancy: {self.leaked_sync_time:.3e} s"
        )
        for cid, overrun in sorted(self.deadline_violations.items()):
            lines.append(f"  DEADLINE VIOLATED {cid}: +{overrun * MS_PER_S:.3f} ms")
        for err in self.errors:
            lines.append(f"  ERROR: {err}")
        return "\n".join(lines)


def audit_controller(cac: AdmissionController) -> SurvivabilityAudit:
    """Audit a controller's final state after (any number of) faults."""
    ring_leaks = cac.audit_allocations()
    deadline_violations: Dict[str, float] = {}
    errors: List[str] = []
    if cac.connections:
        try:
            delays = cac.current_delays()
        except ReproError as exc:
            errors.append(f"delay analysis failed: {exc}")
        else:
            for cid, delay in delays.items():
                deadline = cac.connections[cid].spec.deadline
                if delay > deadline + 1e-12:
                    deadline_violations[cid] = delay - deadline
    return SurvivabilityAudit(
        ring_leaks=ring_leaks,
        deadline_violations=deadline_violations,
        errors=errors,
        n_connections=len(cac.connections),
    )
