"""Retry-with-backoff re-admission of displaced connections.

When a failure tears a connection down mid-simulation, it does not vanish:
the application re-attempts establishment.  Each displaced connection gets
a :class:`RetryEntry` with an exponential-backoff schedule (base delay,
multiplicative factor, cap) plus multiplicative jitter drawn from a
dedicated random stream, and a maximum attempt budget.  Re-admission runs
the *full CAC* on whatever topology is currently alive; when the CAC (or
routing) says no, the entry backs off and waits.

The :class:`RetryOrchestrator` owns the scheduling on a
:class:`~repro.sim.engine.Simulator`: one timed event per pending entry,
plus :meth:`RetryOrchestrator.kick_all` — fired by the injector on every
repair — which cancels the pending backoff timers and re-attempts the
whole queue immediately, tightest deadlines first.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Dict, List, Optional

from repro.core.cac import AdmissionController
from repro.errors import ConfigurationError, ReproError
from repro.network.connection import ConnectionSpec
from repro.sim.engine import Event, Simulator
from repro.sim.metrics import SurvivabilityMetrics


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter and a max-attempt cap."""

    #: Delay before the first re-admission attempt, seconds.
    base_delay: float = 5.0
    #: Multiplicative growth per failed attempt.
    factor: float = 2.0
    #: Upper bound on any single backoff delay, seconds (pre-jitter).
    max_delay: float = 60.0
    #: Give up after this many failed attempts.
    max_attempts: int = 8
    #: Jitter fraction: the delay is scaled by ``1 + jitter * u`` with
    #: ``u ~ U[0, 1)`` so synchronized retries de-correlate.
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.base_delay <= 0 or self.max_delay <= 0:
            raise ConfigurationError("backoff delays must be positive")
        if self.factor < 1.0:
            raise ConfigurationError("backoff factor must be >= 1")
        if self.max_attempts < 1:
            raise ConfigurationError("need at least one retry attempt")
        if self.jitter < 0:
            raise ConfigurationError("jitter must be non-negative")

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Backoff before attempt number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ConfigurationError("attempt numbers are 1-based")
        raw = min(self.max_delay, self.base_delay * self.factor ** (attempt - 1))
        if self.jitter and rng is not None:
            raw *= 1.0 + self.jitter * rng.random()
        return raw

    def schedule(
        self, attempts: Optional[int] = None, rng: Optional[random.Random] = None
    ) -> List[float]:
        """The first ``attempts`` backoff delays, in order (1-based attempts).

        With ``rng`` drawn from a dedicated
        :class:`~repro.sim.random.RandomStreams` substream the sequence is
        fully deterministic: the same master seed and stream name always
        produce the same jittered delays, independent of any other
        randomness consumed elsewhere.  The admission service's
        backpressure verdicts (``BUSY``/``TIMEOUT`` ``retry_after`` hints)
        are derived this way, one substream per connection id.
        """
        n = self.max_attempts if attempts is None else attempts
        if n < 0:
            raise ConfigurationError("attempts must be non-negative")
        return [self.delay(a, rng) for a in range(1, n + 1)]


@dataclasses.dataclass
class RetryEntry:
    """One displaced connection waiting for re-admission."""

    spec: ConnectionSpec
    displaced_at: float
    #: Absolute sim time at which the connection's lifetime ends (None =
    #: permanent).  An entry whose lifetime elapses while queued expires.
    expires_at: Optional[float] = None
    #: Failed attempts so far.
    attempts: int = 0
    next_attempt: float = 0.0
    last_reason: str = ""

    @property
    def conn_id(self) -> str:
        return self.spec.conn_id


class RetryOrchestrator:
    """Drives backoff re-admission of displaced connections on a Simulator.

    Callbacks (all optional) let the embedding harness do its own
    bookkeeping; each receives the :class:`RetryEntry`:

    * ``on_reconnected(entry, result)`` — the CAC re-admitted the spec;
    * ``on_abandoned(entry)`` — the attempt budget ran out;
    * ``on_expired(entry)`` — the lifetime elapsed while disconnected.
    """

    def __init__(
        self,
        sim: Simulator,
        cac: AdmissionController,
        policy: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
        metrics: Optional[SurvivabilityMetrics] = None,
        on_reconnected: Optional[Callable] = None,
        on_abandoned: Optional[Callable] = None,
        on_expired: Optional[Callable] = None,
    ) -> None:
        self.sim = sim
        self.cac = cac
        self.policy = policy or RetryPolicy()
        self.rng = rng
        self.metrics = metrics if metrics is not None else SurvivabilityMetrics()
        self.on_reconnected = on_reconnected
        self.on_abandoned = on_abandoned
        self.on_expired = on_expired
        self._entries: Dict[str, RetryEntry] = {}
        self._timers: Dict[str, Event] = {}

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def pending(self) -> List[RetryEntry]:
        """Queued entries, tightest deadline first."""
        return sorted(
            self._entries.values(),
            key=lambda e: (e.spec.deadline, e.conn_id),
        )

    def enqueue(
        self, spec: ConnectionSpec, expires_at: Optional[float] = None
    ) -> RetryEntry:
        """Queue a displaced connection; its first attempt is scheduled
        one backoff delay from now."""
        if spec.conn_id in self._entries:
            raise ConfigurationError(
                f"connection {spec.conn_id!r} is already queued for retry"
            )
        entry = RetryEntry(
            spec=spec, displaced_at=self.sim.now, expires_at=expires_at
        )
        entry.next_attempt = self.sim.now + self.policy.delay(1, self.rng)
        self._entries[spec.conn_id] = entry
        self.metrics.n_displaced += 1
        self._arm(entry)
        return entry

    def kick_all(self) -> None:
        """Re-attempt every queued entry *now*, tightest deadlines first
        (fired on repair: the topology just got better)."""
        for entry in self.pending:
            if entry.conn_id in self._entries:  # may resolve mid-pass
                self._attempt(entry)

    # ------------------------------------------------------------------

    def _arm(self, entry: RetryEntry) -> None:
        self._timers[entry.conn_id] = self.sim.schedule_at(
            entry.next_attempt,
            lambda cid=entry.conn_id: self._on_timer(cid),
        )

    def _disarm(self, conn_id: str) -> None:
        timer = self._timers.pop(conn_id, None)
        if timer is not None:
            timer.cancel()

    def _on_timer(self, conn_id: str) -> None:
        self._timers.pop(conn_id, None)
        entry = self._entries.get(conn_id)
        if entry is not None:
            self._attempt(entry)

    def _resolve(self, entry: RetryEntry) -> None:
        del self._entries[entry.conn_id]
        self._disarm(entry.conn_id)

    def _attempt(self, entry: RetryEntry) -> None:
        now = self.sim.now
        if entry.expires_at is not None and now >= entry.expires_at - 1e-12:
            self._resolve(entry)
            self.metrics.n_expired += 1
            if self.on_expired:
                self.on_expired(entry)
            return

        self.metrics.n_retry_attempts += 1
        entry.attempts += 1
        try:
            result = self.cac.request(entry.spec)
            admitted, reason = result.admitted, result.reason
        except ReproError as exc:
            # No route / unstable analysis: a clean rejection, not a crash.
            result, admitted = None, False
            reason = f"{type(exc).__name__}: {exc}"

        if admitted:
            self._resolve(entry)
            self.metrics.n_reconnected += 1
            self.metrics.time_to_recover.add(now - entry.displaced_at)
            self.metrics.retries_per_reconnect.add(float(entry.attempts))
            if self.on_reconnected:
                self.on_reconnected(entry, result)
            return

        entry.last_reason = reason
        if entry.attempts >= self.policy.max_attempts:
            self._resolve(entry)
            self.metrics.n_abandoned += 1
            if self.on_abandoned:
                self.on_abandoned(entry)
            return

        # Back off: the timer for the next attempt replaces any armed one
        # (kick_all attempts bypass the timer, so re-arm unconditionally).
        self._disarm(entry.conn_id)
        entry.next_attempt = now + self.policy.delay(entry.attempts + 1, self.rng)
        self._arm(entry)
