"""Fault injection and survivability for the event-driven simulation.

* :mod:`repro.faults.injector` — stochastic (MTBF/MTTR renewal processes)
  or scripted link/node failures scheduled on the
  :class:`~repro.sim.engine.Simulator` event loop.
* :mod:`repro.faults.retry` — retry-with-backoff re-admission of displaced
  connections (exponential backoff, jitter, max-attempt cap).
* :mod:`repro.faults.audit` — end-of-run invariant checks: zero leaked
  synchronous bandwidth, zero deadline-contract violations.

The package sits beside :mod:`repro.sim`: it drives the
:class:`~repro.core.failover.FailoverManager` from timed events, while the
surrounding harness (``ConnectionSimulator`` or a hand-built drill) owns
workload generation and host bookkeeping.
"""

from repro.faults.audit import SurvivabilityAudit, audit_controller
from repro.faults.injector import (
    FaultConfig,
    FaultInjector,
    FaultScript,
    ScriptedFault,
)
from repro.faults.retry import RetryEntry, RetryOrchestrator, RetryPolicy

__all__ = [
    "FaultConfig",
    "FaultInjector",
    "FaultScript",
    "RetryEntry",
    "RetryOrchestrator",
    "RetryPolicy",
    "ScriptedFault",
    "SurvivabilityAudit",
    "audit_controller",
]
