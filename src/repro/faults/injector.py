"""Stochastic link/node fault injection on the discrete-event loop.

Each fault target — an undirected backbone link, an ATM switch, or an
interface device — runs its own alternating renewal process: up for a
time-to-failure drawn from its MTBF distribution, down for a time-to-repair
drawn from its MTTR distribution, forever.  Every draw comes from a
dedicated per-target :class:`~repro.sim.random.RandomStreams` substream
(``faults:link:s1~s2``, ``faults:node:id1``, ...), so enabling faults —
or changing how often they fire — never perturbs the workload streams of
the surrounding simulation.

On failure the injector displaces the affected connections through the
:class:`~repro.core.failover.FailoverManager` (teardown only — synchronous
bandwidth is released; re-admission is the retry queue's job) and reports
them to ``on_displaced``; on repair it restores the element and fires
``on_repaired`` so the retry machinery can re-attempt immediately.

Deterministic :class:`FaultScript` schedules replace the stochastic
processes in tests and reproducible drills.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.core.failover import FailoverManager
from repro.errors import ConfigurationError
from repro.network.connection import ConnectionSpec
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams

#: A link target is an undirected switch pair; a node target is an id.
LinkTarget = Tuple[str, str]
NodeTarget = str


@dataclasses.dataclass(frozen=True)
class FaultConfig:
    """Stochastic fault process parameters (exponential by default).

    An MTBF of 0 disables that fault class entirely.
    """

    #: Mean time between failures of each backbone link, seconds.
    link_mtbf: float = 0.0
    #: Mean time to repair a failed link, seconds.
    link_mttr: float = 30.0
    #: Mean time between failures of each ATM switch, seconds (0 = off).
    switch_mtbf: float = 0.0
    switch_mttr: float = 60.0
    #: Mean time between failures of each interface device, seconds (0 = off).
    device_mtbf: float = 0.0
    device_mttr: float = 60.0
    #: ``"exponential"`` or ``"deterministic"`` (fixed inter-event times —
    #: handy for reproducible drills without writing a full script).
    distribution: str = "exponential"

    def __post_init__(self) -> None:
        for name in ("link_mtbf", "switch_mtbf", "device_mtbf"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        for name in ("link_mttr", "switch_mttr", "device_mttr"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.distribution not in ("exponential", "deterministic"):
            raise ConfigurationError(
                f"unknown fault distribution {self.distribution!r}"
            )

    @property
    def any_enabled(self) -> bool:
        return bool(self.link_mtbf or self.switch_mtbf or self.device_mtbf)


@dataclasses.dataclass(frozen=True)
class ScriptedFault:
    """One scripted event: fail or repair a link/node at an absolute time."""

    time: float
    #: ``"fail"`` or ``"repair"``.
    action: str
    #: ``("s1", "s2")`` for a link, ``"s1"`` / ``"id1"`` for a node.
    target: Union[LinkTarget, NodeTarget]

    def __post_init__(self) -> None:
        if self.action not in ("fail", "repair"):
            raise ConfigurationError(f"unknown fault action {self.action!r}")
        if self.time < 0:
            raise ConfigurationError("scripted fault times must be >= 0")

    @property
    def is_link(self) -> bool:
        return isinstance(self.target, tuple)


@dataclasses.dataclass(frozen=True)
class FaultScript:
    """A deterministic fault schedule (tests, drills, regression runs)."""

    events: Tuple[ScriptedFault, ...]

    def __init__(self, events: Sequence[ScriptedFault]) -> None:
        object.__setattr__(
            self, "events", tuple(sorted(events, key=lambda e: e.time))
        )


class FaultInjector:
    """Schedules failures/repairs on the event loop and displaces
    connections through a :class:`FailoverManager`."""

    def __init__(
        self,
        sim: Simulator,
        manager: FailoverManager,
        streams: Optional[RandomStreams] = None,
        config: Optional[FaultConfig] = None,
        script: Optional[FaultScript] = None,
        on_displaced: Optional[Callable] = None,
        on_repaired: Optional[Callable] = None,
    ) -> None:
        """``on_displaced(kind, target, specs)`` fires after every failure
        event with the deadline-sorted displaced specs (possibly empty);
        ``on_repaired(kind, target)`` after every repair.  ``kind`` is
        ``"link"`` or ``"node"``."""
        if config is None and script is None:
            raise ConfigurationError(
                "need a FaultConfig, a FaultScript, or both"
            )
        if config is not None and config.any_enabled and streams is None:
            raise ConfigurationError(
                "stochastic fault injection needs a RandomStreams"
            )
        self.sim = sim
        self.manager = manager
        self.topology = manager.topology
        self.streams = streams
        self.config = config
        self.script = script
        self.on_displaced = on_displaced
        self.on_repaired = on_repaired
        self.n_failures = 0
        self.n_repairs = 0
        self._started = False

    # ------------------------------------------------------------------
    # Target enumeration
    # ------------------------------------------------------------------

    def link_targets(self) -> List[LinkTarget]:
        """Undirected backbone links, sorted for determinism."""
        pairs = {
            tuple(sorted(pair)) for pair in self.topology._switch_links
        }
        return sorted(pairs)

    def switch_targets(self) -> List[NodeTarget]:
        return sorted(self.topology.switches)

    def device_targets(self) -> List[NodeTarget]:
        return sorted(self.topology.devices)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Arm the schedule: scripted events verbatim, plus one renewal
        process per enabled stochastic target."""
        if self._started:
            raise ConfigurationError("fault injector already started")
        self._started = True
        if self.script is not None:
            for ev in self.script.events:
                self.sim.schedule_at(
                    ev.time, lambda e=ev: self._run_scripted(e)
                )
        if self.config is not None:
            if self.config.link_mtbf:
                for pair in self.link_targets():
                    self._arm_failure(
                        "link", pair, self.config.link_mtbf
                    )
            if self.config.switch_mtbf:
                for sw in self.switch_targets():
                    self._arm_failure("node", sw, self.config.switch_mtbf)
            if self.config.device_mtbf:
                for dev in self.device_targets():
                    self._arm_failure("node", dev, self.config.device_mtbf)

    def _stream_name(self, kind: str, target) -> str:
        ident = "~".join(target) if isinstance(target, tuple) else target
        return f"faults:{kind}:{ident}"

    def _draw(self, kind: str, target, mean: float) -> float:
        if self.config.distribution == "deterministic":
            return mean
        return self.streams.exponential(self._stream_name(kind, target), mean)

    def _mttr_of(self, kind: str, target) -> float:
        if kind == "link":
            return self.config.link_mttr
        if target in self.topology.switches:
            return self.config.switch_mttr
        return self.config.device_mttr

    def _arm_failure(self, kind: str, target, mtbf: float) -> None:
        delay = self._draw(kind, target, mtbf)
        self.sim.schedule(delay, lambda: self._stochastic_fail(kind, target))

    def _stochastic_fail(self, kind: str, target) -> None:
        self._fail(kind, target)
        mttr = self._mttr_of(kind, target)
        repair_delay = self._draw(kind, target, mttr)
        self.sim.schedule(
            repair_delay, lambda: self._stochastic_repair(kind, target)
        )

    def _stochastic_repair(self, kind: str, target) -> None:
        self._repair(kind, target)
        mtbf = (
            self.config.link_mtbf
            if kind == "link"
            else self.config.switch_mtbf
            if target in self.topology.switches
            else self.config.device_mtbf
        )
        self._arm_failure(kind, target, mtbf)

    def _run_scripted(self, ev: ScriptedFault) -> None:
        kind = "link" if ev.is_link else "node"
        if ev.action == "fail":
            self._fail(kind, ev.target)
        else:
            self._repair(kind, ev.target)

    # ------------------------------------------------------------------
    # Failure / repair execution
    # ------------------------------------------------------------------

    def _fail(self, kind: str, target) -> None:
        if kind == "link":
            specs: List[ConnectionSpec] = self.manager.displace_link(*target)
        else:
            specs = self.manager.displace_node(target)
        self.n_failures += 1
        if self.on_displaced:
            self.on_displaced(kind, target, specs)

    def _repair(self, kind: str, target) -> None:
        if kind == "link":
            self.manager.restore_link(*target)
        else:
            self.manager.restore_node(target)
        self.n_repairs += 1
        if self.on_repaired:
            self.on_repaired(kind, target)
