"""Staircase constructors and quantization used by the server theorems.

Staircases are unbounded periodic step functions; a :class:`Curve` has a
finite breakpoint list, so each constructor represents the staircase exactly
over a configurable horizon and then continues with an affine tail chosen on
the *safe* side:

* service staircases (token availability) continue with a tail that never
  exceeds the true staircase — service is under-estimated, delays stay
  conservative;
* arrival staircases continue with a tail that never falls below the true
  staircase — arrivals are over-estimated, again conservative.

All constructors build their breakpoint/value/slope arrays with vectorized
numpy expressions; ``ceiling_quantize`` additionally batches its
pseudo-inverse queries over the whole integer frame-level grid instead of
one scalar bisection per level (see the function's docstring for why its
sequential driver loop is retained).
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Optional, Tuple

import numpy as np

from repro.envelopes.curve import Curve
from repro.errors import CurveError


@lru_cache(maxsize=512)
def _timed_token_staircase_cached(
    sync_bandwidth_time: float,
    ttrt: float,
    ring_bandwidth: float,
    n_steps: int,
) -> Curve:
    """Memoized staircase construction (curves are immutable, sharing is safe).

    The MAC-server analysis rebuilds the same availability staircase for every
    (station, n_steps) refinement; the parameter tuple is tiny and hashable so
    an LRU cache removes the rebuild cost entirely.
    """
    step_bits = sync_bandwidth_time * ring_bandwidth
    n_steps = max(2, int(n_steps))
    # Exact steps k = 2 .. n_steps+1: x = k*TTRT, y = (k-1)*H*BW.
    ks = np.arange(2.0, n_steps + 2.0)
    last_k = n_steps + 1
    xs = np.concatenate([[0.0], ks * ttrt, [(last_k + 1) * ttrt]])
    ys = np.concatenate([[0.0], (ks - 1.0) * step_bits, [(last_k - 1) * step_bits]])
    slopes = np.zeros(len(xs))
    slopes[-1] = step_bits / ttrt
    return Curve(xs, ys, slopes, validate=False)


def timed_token_staircase(
    sync_bandwidth_time: float,
    ttrt: float,
    ring_bandwidth: float,
    n_steps: int = 64,
) -> Curve:
    """The timed-token availability curve of Theorem 1.

    ``avail(t) = max(0, (floor(t / TTRT) - 1) * H * BW)``: a station holding
    synchronous allocation ``H`` (seconds of transmission per token rotation)
    is guaranteed ``H * BW`` bits in every full TTRT window, with up to two
    windows of dead time at the start (worst-case token position).

    The affine tail beyond ``n_steps`` exact steps is the line through the
    *left corners* of subsequent steps — it touches the staircase from below,
    so results stay safe if the busy interval outruns the horizon.

    Parameters
    ----------
    sync_bandwidth_time:
        ``H`` — synchronous allocation, in seconds per rotation.
    ttrt:
        Target token rotation time, seconds.
    ring_bandwidth:
        ``BW_FDDI`` in bits/second.
    n_steps:
        Number of exact steps before the conservative affine tail.
    """
    if sync_bandwidth_time < 0 or ttrt <= 0 or ring_bandwidth <= 0:
        raise CurveError("timed-token staircase needs positive parameters")
    if sync_bandwidth_time * ring_bandwidth == 0:
        return Curve.zero()
    return _timed_token_staircase_cached(
        float(sync_bandwidth_time), float(ttrt), float(ring_bandwidth), int(n_steps)
    )


def periodic_burst_staircase(
    burst_bits: float,
    period: float,
    n_periods: int = 64,
    peak_rate: float = math.inf,
) -> Curve:
    """Arrival envelope of a periodic source: ``C`` bits every ``P`` seconds.

    With ``peak_rate = inf`` (the staircase interpretation) the envelope is
    ``A(t) = C * (floor(t / P) + 1)`` — a burst of ``C`` bits may land at the
    very start of the interval and at every period boundary after it.  With a
    finite ``peak_rate`` each burst is smeared into a ramp of slope
    ``peak_rate`` lasting ``C / peak_rate`` seconds.

    The affine tail beyond ``n_periods`` periods passes through the step tops
    (it dominates the true staircase — conservative for arrivals).
    """
    if burst_bits < 0 or period <= 0:
        raise CurveError("periodic staircase needs burst >= 0 and period > 0")
    if burst_bits == 0:
        return Curve.zero()
    if peak_rate <= 0:
        raise CurveError("peak rate must be positive")
    n_periods = max(1, int(n_periods))
    rate = burst_bits / period
    ks = np.arange(float(n_periods))
    if math.isinf(peak_rate):
        # Tail through step tops: A(t) <= C * (t/P + 1) with equality at jumps.
        xs = np.concatenate([ks * period, [n_periods * period]])
        ys = np.concatenate([(ks + 1.0) * burst_bits, [(n_periods + 1) * burst_bits]])
        slopes = np.zeros(n_periods + 1)
        slopes[-1] = rate
        return Curve(xs, ys, slopes, validate=False)
    ramp_time = burst_bits / peak_rate
    if ramp_time >= period:
        # The source cannot even emit C within P at this peak rate: it is a
        # plain constant-rate source at the peak rate capped by C per period.
        return Curve.affine(0.0, min(peak_rate, rate))
    # Interleaved ramp starts and plateau starts, two breakpoints per period.
    starts = ks * period
    xs = np.empty(2 * n_periods + 1)
    ys = np.empty(2 * n_periods + 1)
    slopes = np.empty(2 * n_periods + 1)
    xs[0:-1:2] = starts
    xs[1:-1:2] = starts + ramp_time
    ys[0:-1:2] = ks * burst_bits
    ys[1:-1:2] = (ks + 1.0) * burst_bits
    slopes[0:-1:2] = peak_rate
    slopes[1:-1:2] = 0.0
    # Beyond the horizon, switch to the affine majorant C + rate * t (the
    # standard token-bucket bound for this source), which dominates the true
    # envelope everywhere, so the switch jump is upward.
    switch_x = n_periods * period
    xs[-1] = switch_x
    ys[-1] = burst_bits + rate * switch_x
    slopes[-1] = rate
    return Curve(xs, ys, slopes, validate=False)


def ceiling_quantize(
    curve: Curve,
    quantum_in: float,
    quantum_out: float,
    t_max: float,
    max_steps: int = 2048,
) -> Curve:
    """Theorem 2 quantization: ``g(t) = ceil(f(t) / q_in) * q_out``.

    A frame of ``q_in`` payload bits leaves the converter as ``q_out`` bits of
    cells (padding included), so the output envelope is the input envelope
    rounded up to whole frames and re-scaled to cell bits.

    The staircase is computed exactly up to ``t_max`` (typically the busy
    interval plus the analysis horizon).  If that would take more than
    ``max_steps`` steps, the function falls back to the conservative linear
    bound ``g <= f * (q_out / q_in) + q_out`` (one extra frame of slack),
    which dominates the staircase everywhere.

    Implementation note: frame levels visited by the sequential driver are
    integers except (at most) the very first one, so the per-level
    pseudo-inverse and evaluation queries are batched over the whole integer
    level grid up front (one vectorized ``pseudo_inverse_many`` call instead
    of one scalar bisection per level).  The driver loop itself must stay
    sequential — each level's threshold depends on the previous ``new_level``
    through the burst-merge and forced-increment rules — but with the grid
    precomputed it does O(1) work per visited level.  A scalar fallback
    handles non-integer levels so the output is bit-identical to the
    sequential reference in every case.
    """
    if quantum_in <= 0 or quantum_out <= 0:
        raise CurveError("quantization needs positive quanta")
    total_steps = curve(t_max) / quantum_in
    if not math.isfinite(total_steps) or total_steps > max_steps:
        return _linear_quantize_bound(curve, quantum_in, quantum_out)

    eps_q = 1e-9 * max(1.0, quantum_in)
    lvl0 = math.ceil(_round_safe(curve(0.0) / quantum_in))

    # Precompute (t_next, new_level) for every integer level the driver can
    # visit.  Thresholds use float(L) * quantum_in, identical to the scalar
    # expression for Python-int and integer-float levels alike.
    n_levels = max(1, int(math.ceil(total_steps)) + 4 - lvl0)
    levels_f = np.arange(lvl0, lvl0 + n_levels, dtype=np.int64).astype(float)
    t_grid = curve.pseudo_inverse_many(levels_f * quantum_in + eps_q)
    live = np.isfinite(t_grid) & (t_grid <= t_max)
    cand_grid = np.zeros(n_levels)
    if live.any():
        ratios = curve(t_grid[live]) / quantum_in
        nearest = np.round(ratios)
        snapped = np.where(
            np.abs(ratios - nearest) < 1e-9 * np.maximum(1.0, np.abs(ratios)),
            nearest,
            ratios,
        )
        cand_grid[live] = np.ceil(snapped)

    def _step(level: float) -> Optional[Tuple[float, float]]:
        """One driver step: (t_next, new_level) at `level`, None past t_max."""
        if float(level).is_integer():
            k = int(level) - lvl0
            if 0 <= k < n_levels:
                if not live[k]:
                    return None
                return float(t_grid[k]), float(cand_grid[k])
        # Non-integer level (possible only on the first iteration, for
        # quanta where lvl0 * q_out / q_out is not exact) or out-of-grid:
        # scalar reference path.
        threshold = level * quantum_in + eps_q
        t_next = curve.pseudo_inverse(threshold)
        if not math.isfinite(t_next) or t_next > t_max:
            return None
        return t_next, float(math.ceil(_round_safe(curve(t_next) / quantum_in)))

    xs = [0.0]
    ys = [lvl0 * quantum_out]
    slopes = [0.0]
    level = ys[0] / quantum_out  # current number of whole frames
    while True:
        # First time the input strictly exceeds `level` frames.
        step = _step(level)
        if step is None:
            break
        t_next, new_level = step
        if new_level <= level:
            new_level = level + 1
        if t_next <= xs[-1] + 1e-15:
            # A burst crossing several quanta at the same instant.
            ys[-1] = new_level * quantum_out
        else:
            xs.append(t_next)
            ys.append(new_level * quantum_out)
            slopes.append(0.0)
        level = new_level
    # Beyond t_max, switch to the affine majorant so the curve keeps
    # dominating the true staircase for all time.  The majorant is >= the
    # staircase, so the jump at the switch point is upward (non-decreasing).
    majorant = _linear_quantize_bound(curve, quantum_in, quantum_out)
    switch_x = max(t_max, xs[-1] + 1e-12)
    xs.append(switch_x)
    ys.append(float(majorant(switch_x)))
    slopes.append(float(majorant.slopes[-1]) if switch_x >= majorant.last_breakpoint else curve.final_slope * (quantum_out / quantum_in))
    return Curve(xs, np.asarray(ys, dtype=float), slopes, validate=False).simplify()


def _round_safe(x: float) -> float:
    """Snap values a hair below an integer up to it before ``ceil``."""
    nearest = round(x)
    if abs(x - nearest) < 1e-9 * max(1.0, abs(x)):
        return float(nearest)
    return x


def _linear_quantize_bound(curve: Curve, quantum_in: float, quantum_out: float) -> Curve:
    """The affine majorant ``f * (q_out / q_in) + q_out`` of the staircase."""
    scaled = curve * (quantum_out / quantum_in)
    return scaled + quantum_out
