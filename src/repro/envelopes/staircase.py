"""Staircase constructors and quantization used by the server theorems.

Staircases are unbounded periodic step functions; a :class:`Curve` has a
finite breakpoint list, so each constructor represents the staircase exactly
over a configurable horizon and then continues with an affine tail chosen on
the *safe* side:

* service staircases (token availability) continue with a tail that never
  exceeds the true staircase — service is under-estimated, delays stay
  conservative;
* arrival staircases continue with a tail that never falls below the true
  staircase — arrivals are over-estimated, again conservative.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.envelopes.curve import Curve
from repro.errors import CurveError


def timed_token_staircase(
    sync_bandwidth_time: float,
    ttrt: float,
    ring_bandwidth: float,
    n_steps: int = 64,
) -> Curve:
    """The timed-token availability curve of Theorem 1.

    ``avail(t) = max(0, (floor(t / TTRT) - 1) * H * BW)``: a station holding
    synchronous allocation ``H`` (seconds of transmission per token rotation)
    is guaranteed ``H * BW`` bits in every full TTRT window, with up to two
    windows of dead time at the start (worst-case token position).

    Parameters
    ----------
    sync_bandwidth_time:
        ``H`` — synchronous allocation, in seconds per rotation.
    ttrt:
        Target token rotation time, seconds.
    ring_bandwidth:
        ``BW_FDDI`` in bits/second.
    n_steps:
        Number of exact steps before the conservative affine tail (the tail
        under-estimates the staircase, so results stay safe if the busy
        interval outruns the horizon).
    """
    if sync_bandwidth_time < 0 or ttrt <= 0 or ring_bandwidth <= 0:
        raise CurveError("timed-token staircase needs positive parameters")
    step_bits = sync_bandwidth_time * ring_bandwidth
    if step_bits == 0:
        return Curve.zero()
    n_steps = max(2, int(n_steps))
    xs: List[float] = [0.0]
    ys: List[float] = [0.0]
    slopes: List[float] = [0.0]
    for k in range(2, n_steps + 2):
        xs.append(k * ttrt)
        ys.append((k - 1) * step_bits)
        slopes.append(0.0)
    # Affine tail: line through the *left corners* of subsequent steps —
    # touches the staircase from below.  It starts one period after the last
    # exact step so it never overtakes the current plateau.
    last_k = n_steps + 1
    xs.append((last_k + 1) * ttrt)
    ys.append((last_k - 1) * step_bits)
    slopes.append(step_bits / ttrt)
    return Curve(xs, ys, slopes, validate=False)


def periodic_burst_staircase(
    burst_bits: float,
    period: float,
    n_periods: int = 64,
    peak_rate: float = math.inf,
) -> Curve:
    """Arrival envelope of a periodic source: ``C`` bits every ``P`` seconds.

    With ``peak_rate = inf`` (the staircase interpretation) the envelope is
    ``A(t) = C * (floor(t / P) + 1)`` — a burst of ``C`` bits may land at the
    very start of the interval and at every period boundary after it.  With a
    finite ``peak_rate`` each burst is smeared into a ramp of slope
    ``peak_rate`` lasting ``C / peak_rate`` seconds.

    The affine tail beyond ``n_periods`` periods passes through the step tops
    (it dominates the true staircase — conservative for arrivals).
    """
    if burst_bits < 0 or period <= 0:
        raise CurveError("periodic staircase needs burst >= 0 and period > 0")
    if burst_bits == 0:
        return Curve.zero()
    if peak_rate <= 0:
        raise CurveError("peak rate must be positive")
    n_periods = max(1, int(n_periods))
    rate = burst_bits / period
    if math.isinf(peak_rate):
        xs = [k * period for k in range(n_periods)]
        ys = [(k + 1) * burst_bits for k in range(n_periods)]
        slopes = [0.0] * n_periods
        # Tail through step tops: A(t) <= C * (t/P + 1) with equality at jumps.
        xs.append(n_periods * period)
        ys.append((n_periods + 1) * burst_bits)
        slopes.append(rate)
        return Curve(xs, ys, slopes, validate=False)
    ramp_time = burst_bits / peak_rate
    if ramp_time >= period:
        # The source cannot even emit C within P at this peak rate: it is a
        # plain constant-rate source at the peak rate capped by C per period.
        return Curve.affine(0.0, min(peak_rate, rate))
    xs = []
    ys = []
    slopes = []
    for k in range(n_periods):
        start = k * period
        xs.append(start)
        ys.append(k * burst_bits)
        slopes.append(peak_rate)
        xs.append(start + ramp_time)
        ys.append((k + 1) * burst_bits)
        slopes.append(0.0)
    # Beyond the horizon, switch to the affine majorant C + rate * t (the
    # standard token-bucket bound for this source), which dominates the true
    # envelope everywhere, so the switch jump is upward.
    switch_x = n_periods * period
    xs.append(switch_x)
    ys.append(burst_bits + rate * switch_x)
    slopes.append(rate)
    return Curve(xs, ys, slopes, validate=False)


def ceiling_quantize(
    curve: Curve,
    quantum_in: float,
    quantum_out: float,
    t_max: float,
    max_steps: int = 2048,
) -> Curve:
    """Theorem 2 quantization: ``g(t) = ceil(f(t) / q_in) * q_out``.

    A frame of ``q_in`` payload bits leaves the converter as ``q_out`` bits of
    cells (padding included), so the output envelope is the input envelope
    rounded up to whole frames and re-scaled to cell bits.

    The staircase is computed exactly up to ``t_max`` (typically the busy
    interval plus the analysis horizon).  If that would take more than
    ``max_steps`` steps, the function falls back to the conservative linear
    bound ``g <= f * (q_out / q_in) + q_out`` (one extra frame of slack),
    which dominates the staircase everywhere.
    """
    if quantum_in <= 0 or quantum_out <= 0:
        raise CurveError("quantization needs positive quanta")
    total_steps = curve(t_max) / quantum_in
    if not math.isfinite(total_steps) or total_steps > max_steps:
        return _linear_quantize_bound(curve, quantum_in, quantum_out)

    xs: List[float] = [0.0]
    ys: List[float] = [math.ceil(_round_safe(curve(0.0) / quantum_in)) * quantum_out]
    slopes: List[float] = [0.0]
    level = ys[0] / quantum_out  # current number of whole frames
    while True:
        # First time the input strictly exceeds `level` frames.
        threshold = level * quantum_in + 1e-9 * max(1.0, quantum_in)
        t_next = curve.pseudo_inverse(threshold)
        if not math.isfinite(t_next) or t_next > t_max:
            break
        new_level = math.ceil(_round_safe(curve(t_next) / quantum_in))
        if new_level <= level:
            new_level = level + 1
        if t_next <= xs[-1] + 1e-15:
            # A burst crossing several quanta at the same instant.
            ys[-1] = new_level * quantum_out
        else:
            xs.append(t_next)
            ys.append(new_level * quantum_out)
            slopes.append(0.0)
        level = new_level
    # Beyond t_max, switch to the affine majorant so the curve keeps
    # dominating the true staircase for all time.  The majorant is >= the
    # staircase, so the jump at the switch point is upward (non-decreasing).
    majorant = _linear_quantize_bound(curve, quantum_in, quantum_out)
    switch_x = max(t_max, xs[-1] + 1e-12)
    xs.append(switch_x)
    ys.append(float(majorant(switch_x)))
    slopes.append(float(majorant.slopes[-1]) if switch_x >= majorant.last_breakpoint else curve.final_slope * (quantum_out / quantum_in))
    return Curve(xs, np.asarray(ys, dtype=float), slopes, validate=False).simplify()


def _round_safe(x: float) -> float:
    """Snap values a hair below an integer up to it before ``ceil``."""
    nearest = round(x)
    if abs(x - nearest) < 1e-9 * max(1.0, abs(x)):
        return float(nearest)
    return x


def _linear_quantize_bound(curve: Curve, quantum_in: float, quantum_out: float) -> Curve:
    """The affine majorant ``f * (q_out / q_in) + q_out`` of the staircase."""
    scaled = curve * (quantum_out / quantum_in)
    return scaled + quantum_out
