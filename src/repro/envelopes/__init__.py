"""Piecewise-linear envelope algebra.

This package is the numerical engine behind the delay analysis of Section 4
of the paper.  Cumulative arrival envelopes ``A(I) = I * Gamma(I)`` (the
maximum number of bits a connection may deliver in any interval of length
``I``) and service availability staircases (e.g. the timed-token
``avail(t)`` of Theorem 1) are both represented as non-decreasing,
right-continuous piecewise-linear curves, and every quantity the paper needs
— busy intervals, buffer bounds, worst-case delays, output envelopes — is an
exact operation on such curves:

* worst-case delay   = horizontal deviation  :func:`horizontal_deviation`
* buffer requirement = vertical deviation    :func:`vertical_deviation`
* busy interval      = first crossing        :func:`busy_interval`
* output envelope    = capped deconvolution  :func:`deconvolve`
"""

from repro.envelopes.curve import Curve
from repro.envelopes.operations import (
    busy_interval,
    deconvolve,
    horizontal_deviation,
    vertical_deviation,
)
from repro.envelopes.staircase import (
    ceiling_quantize,
    periodic_burst_staircase,
    timed_token_staircase,
)

__all__ = [
    "Curve",
    "busy_interval",
    "ceiling_quantize",
    "deconvolve",
    "horizontal_deviation",
    "periodic_burst_staircase",
    "timed_token_staircase",
    "vertical_deviation",
]
