"""Pure-Python reference implementations of the envelope algebra.

Every function here recomputes, with per-segment Python loops and scalar
arithmetic, a quantity that the production code in
:mod:`repro.envelopes.curve` / :mod:`repro.envelopes.operations` computes
with vectorized numpy kernels.  They exist for two reasons:

* **correctness oracle** — the property-based tests draw random curves and
  assert that the vectorized kernels agree with these transparent
  implementations within ``MONOTONE_RTOL``;
* **benchmark baseline** — the ``envelopes`` bench suite reports each
  kernel's speedup against its reference implementation.

They are deliberately *simple*, not fast: linear scans instead of binary
search, per-point loops instead of array expressions.  Do not call them
from production code.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

from repro.envelopes.curve import EPS, Curve


def ref_eval(curve: Curve, t: float) -> float:
    """Right-continuous evaluation by linear scan over the segments."""
    if t < 0:
        return 0.0
    xs, ys, slopes = curve.xs, curve.ys, curve.slopes
    i = 0
    for k in range(len(xs)):
        if xs[k] <= t:
            i = k
        else:
            break
    return float(ys[i] + slopes[i] * (t - xs[i]))


def ref_left_limit(curve: Curve, t: float) -> float:
    """``lim_{s -> t^-} curve(s)`` by linear scan (0 for t <= 0)."""
    if t <= 0:
        return 0.0
    xs, ys, slopes = curve.xs, curve.ys, curve.slopes
    i = 0
    for k in range(len(xs)):
        if xs[k] < t:
            i = k
        else:
            break
    return float(ys[i] + slopes[i] * (t - xs[i]))


def ref_slope_at(curve: Curve, t: float) -> float:
    """Slope of the segment containing ``t`` (right-continuous)."""
    xs, slopes = curve.xs, curve.slopes
    i = 0
    for k in range(len(xs)):
        if xs[k] <= t:
            i = k
        else:
            break
    return float(slopes[i])


def _merged_grid(a: Curve, b: Curve) -> List[float]:
    return sorted({float(x) for x in a.xs} | {float(x) for x in b.xs})


def ref_add(a: Curve, b: Curve) -> Curve:
    """Pointwise sum over the merged breakpoint grid."""
    xs = _merged_grid(a, b)
    ys = [ref_eval(a, x) + ref_eval(b, x) for x in xs]
    slopes = [ref_slope_at(a, x) + ref_slope_at(b, x) for x in xs]
    return Curve(xs, ys, slopes, validate=False).simplify()


def ref_sum(curves: Iterable[Curve]) -> Curve:
    """N-ary sum as a pairwise fold of :func:`ref_add`."""
    total = Curve.zero()
    for c in curves:
        total = ref_add(total, c)
    return total


def ref_shift_right(curve: Curve, delay: float) -> Curve:
    """``result(t) = curve(t - delay)`` (zero before the shift)."""
    if delay < 0:
        raise ValueError("delay must be non-negative")
    if delay == 0:
        return curve
    xs = [0.0] + [float(x) + delay for x in curve.xs]
    ys = [0.0] + [float(y) for y in curve.ys]
    slopes = [0.0] + [float(s) for s in curve.slopes]
    return Curve(xs, ys, slopes, validate=False)


def ref_shift_left(curve: Curve, advance: float) -> Curve:
    """``result(t) = curve(t + advance)``."""
    if advance < 0:
        raise ValueError("advance must be non-negative")
    if advance == 0:
        return curve
    xs = [0.0]
    ys = [ref_eval(curve, advance)]
    slopes = [ref_slope_at(curve, advance)]
    for x, y, s in zip(curve.xs, curve.ys, curve.slopes):
        if x > advance:
            xs.append(float(x) - advance)
            ys.append(float(y))
            slopes.append(float(s))
    return Curve(xs, ys, slopes, validate=False)


def _ref_combine(a: Curve, b: Curve, use_min: bool) -> Curve:
    """Pointwise min/max with crossing points, one segment at a time."""
    base = _merged_grid(a, b)
    xs = list(base)
    for i, x in enumerate(base):
        seg_end = base[i + 1] if i + 1 < len(base) else math.inf
        va, vb = ref_eval(a, x), ref_eval(b, x)
        sa, sb = ref_slope_at(a, x), ref_slope_at(b, x)
        dslope = sa - sb
        if abs(dslope) < EPS:
            continue
        t_cross = -(va - vb) / dslope
        x_cross = x + t_cross
        if t_cross > EPS and x_cross < seg_end - EPS:
            xs.append(x_cross)
    xs = sorted(set(xs))
    ys = []
    slopes = []
    for x in xs:
        va, vb = ref_eval(a, x), ref_eval(b, x)
        sa, sb = ref_slope_at(a, x), ref_slope_at(b, x)
        ys.append(min(va, vb) if use_min else max(va, vb))
        if abs(va - vb) <= 1e-12 * max(1.0, abs(va)):
            slopes.append(min(sa, sb) if use_min else max(sa, sb))
        elif (va < vb) == use_min:
            slopes.append(sa)
        else:
            slopes.append(sb)
    return Curve(xs, ys, slopes, validate=False).simplify()


def ref_minimum(a: Curve, b: Curve) -> Curve:
    return _ref_combine(a, b, use_min=True)


def ref_maximum(a: Curve, b: Curve) -> Curve:
    return _ref_combine(a, b, use_min=False)


def ref_pseudo_inverse(curve: Curve, y: float) -> float:
    """``inf { t >= 0 : curve(t) >= y }`` by scanning segments in order."""
    xs, ys, slopes = curve.xs, curve.ys, curve.slopes
    n = len(xs)
    if y <= ys[0]:
        return 0.0
    for i in range(n):
        seg_end = float(xs[i + 1]) if i + 1 < n else math.inf
        if y <= ys[i]:
            # The jump at breakpoint i reaches y.
            return float(xs[i])
        if slopes[i] > EPS:
            t = float(xs[i]) + (y - float(ys[i])) / float(slopes[i])
            if t <= seg_end:
                return t
    return math.inf


def ref_busy_interval(arrival: Curve, service: Curve, t_max: float = math.inf) -> float:
    """Sequential scan for ``min { t > 0 : A(t) <= S(t) }``."""
    grid = [x for x in _merged_grid(arrival, service) if x <= t_max]
    prev_x = None
    prev_diff = None
    for x in grid:
        a_val = ref_eval(arrival, x)
        diff = a_val - ref_eval(service, x)
        tol = 1e-9 * max(1.0, abs(a_val))
        if x > 0 and diff <= tol:
            if prev_x is not None and prev_diff is not None and prev_diff > tol:
                dslope = ref_slope_at(arrival, prev_x) - ref_slope_at(service, prev_x)
                if dslope < -EPS:
                    t_cross = prev_x - prev_diff / dslope
                    if t_cross < x - EPS:
                        return float(t_cross)
            return float(x)
        prev_x, prev_diff = x, diff
    x0 = grid[-1] if grid else 0.0
    a0 = ref_eval(arrival, x0)
    diff0 = a0 - ref_eval(service, x0)
    if diff0 <= 1e-9 * max(1.0, abs(a0)):
        return x0 if x0 > 0 else 0.0
    dslope = arrival.final_slope - service.final_slope
    if dslope >= -EPS:
        return math.inf
    return float(x0 - diff0 / dslope)


def ref_vertical_deviation(
    arrival: Curve, service: Curve, t_max: float = math.inf
) -> float:
    """``sup_{0 < t <= t_max} [A(t) - S(t)]`` over breakpoints + left limits."""
    grid = [x for x in _merged_grid(arrival, service) if x <= t_max] or [0.0]
    best = 0.0
    for x in grid:
        best = max(best, ref_eval(arrival, x) - ref_eval(service, x))
        best = max(best, ref_left_limit(arrival, x) - ref_left_limit(service, x))
    if math.isfinite(t_max):
        return max(best, ref_eval(arrival, t_max) - ref_eval(service, t_max))
    if arrival.final_slope > service.final_slope + EPS:
        return math.inf
    return best


def ref_horizontal_deviation(
    arrival: Curve, service: Curve, t_max: float = math.inf
) -> float:
    """``sup_t min { d >= 0 : S(t + d) >= A(t) }`` via per-candidate scans."""
    if math.isinf(t_max) and arrival.final_slope > service.final_slope + EPS:
        return math.inf
    levels = [float(y) for y in service.ys]
    levels += [ref_left_limit(service, float(x)) for x in service.xs[1:]]
    cands = [float(x) for x in arrival.xs]
    for level in levels:
        t = ref_pseudo_inverse(arrival, level)
        if math.isfinite(t):
            cands.append(t)
    cands += [c + 1e-9 * max(1.0, c) for c in cands]
    if math.isfinite(t_max):
        cands = [c for c in cands if c <= t_max + EPS]
        cands.append(float(t_max))
    cands = [c for c in cands if c >= 0.0]
    if not cands:
        return 0.0
    best = 0.0
    for t in cands:
        s_time = ref_pseudo_inverse(service, ref_eval(arrival, t))
        if math.isinf(s_time):
            return math.inf
        best = max(best, s_time - t)
    return max(best, 0.0)


def ref_deconvolve(
    arrival: Curve, service: Curve, t_limit: float, i_max: float | None = None
) -> Curve:
    """``O(I) = sup_{0 <= t <= t_limit} [A(t + I) - S(t)]`` by nested loops."""
    if not math.isfinite(t_limit):
        raise ValueError("deconvolution needs a finite busy interval")
    t_limit = max(0.0, t_limit)
    if i_max is None:
        i_max = arrival.last_breakpoint + t_limit + EPS

    t_cands = {0.0, t_limit}
    for x in list(service.xs) + [t_limit]:
        x = float(x)
        if 0.0 < x < t_limit:
            t_cands.add(x)
        if 0.0 < x <= t_limit:
            t_cands.add(max(0.0, x - 1e-9 * max(1.0, x)))
    t_sorted = sorted(t_cands)

    i_cands = {0.0, float(i_max)}
    for ax in arrival.xs:
        ax = float(ax)
        for t in t_sorted:
            d = ax - t
            if 0.0 < d < i_max:
                i_cands.add(d)
        if 0.0 < ax < i_max:
            i_cands.add(ax)
    i_grid = sorted(i_cands)

    values = []
    running = -math.inf
    for big_i in i_grid:
        best = -math.inf
        for t in t_sorted:
            best = max(best, ref_eval(arrival, t + big_i) - ref_eval(service, t))
        for ax in arrival.xs:
            t = float(ax) - big_i
            if 0.0 <= t <= t_limit:
                best = max(best, ref_eval(arrival, float(ax)) - ref_eval(service, t))
        running = max(running, best)
        values.append(running)
    points: Sequence[Tuple[float, float]] = list(zip(i_grid, values))
    return Curve.from_points(points, final_slope=arrival.final_slope).simplify()
