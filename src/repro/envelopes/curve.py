"""The :class:`Curve` class: non-decreasing piecewise-linear curves.

A curve is defined on ``[0, +inf)`` by a finite list of segments.  Segment
``i`` starts at ``x[i]`` with value ``y[i]`` and slope ``slope[i]``; it ends
where segment ``i + 1`` begins, and the final segment extends to infinity.
Jump discontinuities are allowed (``y[i+1]`` may exceed the left limit of
segment ``i``), and curves are *right-continuous*: ``curve(x[i]) == y[i]``.

This representation is closed under every operation the delay analysis
needs: addition, scalar multiplication, pointwise min/max, and time shifts
all produce curves of the same class, computed exactly (no sampling grid).
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import CurveError

#: Relative/absolute tolerance used when comparing coordinates.
EPS = 1e-12

#: Relative tolerance for the monotonicity check at segment boundaries —
#: looser than EPS because left limits accumulate one multiply-add of error.
MONOTONE_RTOL = 1e-6


def _is_close(a: float, b: float, tol: float = 1e-9) -> bool:
    return abs(a - b) <= tol * max(1.0, abs(a), abs(b))


class Curve:
    """A non-decreasing, right-continuous piecewise-linear curve on [0, inf).

    Parameters
    ----------
    xs, ys, slopes:
        Parallel sequences describing the segments.  ``xs`` must be strictly
        increasing and start at 0; ``slopes`` must be non-negative; the curve
        must be non-decreasing across segment boundaries (jumps may only go
        up).

    Notes
    -----
    Instances are immutable; all operations return new curves.
    """

    __slots__ = ("xs", "ys", "slopes", "_lists", "_fingerprint")

    def __init__(
        self,
        xs: Sequence[float],
        ys: Sequence[float],
        slopes: Sequence[float],
        validate: bool = True,
    ) -> None:
        xs_arr = np.asarray(xs, dtype=float)
        ys_arr = np.asarray(ys, dtype=float)
        slopes_arr = np.asarray(slopes, dtype=float)
        if validate:
            if not (len(xs_arr) == len(ys_arr) == len(slopes_arr)):
                raise CurveError("xs, ys and slopes must have equal length")
            if len(xs_arr) == 0:
                raise CurveError("a curve needs at least one segment")
            if abs(xs_arr[0]) > EPS:
                raise CurveError(f"first breakpoint must be at x=0, got {xs_arr[0]}")
            if np.any(np.diff(xs_arr) <= 0):
                raise CurveError("breakpoints must be strictly increasing")
            if np.any(slopes_arr < -EPS):
                raise CurveError("slopes must be non-negative for envelopes")
            # Non-decreasing across boundaries: y[i+1] >= left limit.
            if len(xs_arr) > 1:
                left_limits = ys_arr[:-1] + slopes_arr[:-1] * np.diff(xs_arr)
                if np.any(
                    ys_arr[1:]
                    < left_limits
                    - MONOTONE_RTOL * np.maximum(1.0, np.abs(left_limits))
                ):
                    raise CurveError("curve must be non-decreasing (downward jump found)")
        self.xs = xs_arr
        self.ys = ys_arr
        self.slopes = slopes_arr
        # Scalar-evaluation fast path: plain Python lists, materialized on
        # first scalar use (bisect + float arithmetic beats numpy indexing
        # for single points, and intermediate curves never pay for it).
        self._lists = None
        self._fingerprint = None

    def _as_lists(self) -> Tuple[List[float], List[float], List[float]]:
        lists = self._lists
        if lists is None:
            lists = (self.xs.tolist(), self.ys.tolist(), self.slopes.tolist())
            self._lists = lists
        return lists

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def zero() -> "Curve":
        """The identically-zero curve."""
        return Curve([0.0], [0.0], [0.0], validate=False)

    @staticmethod
    def constant(value: float) -> "Curve":
        """A constant curve (jump to ``value`` at t=0)."""
        if value < 0:
            raise CurveError("constant envelope must be non-negative")
        return Curve([0.0], [value], [0.0], validate=False)

    @staticmethod
    def affine(burst: float, rate: float) -> "Curve":
        """The token-bucket curve ``burst + rate * t``.

        With ``burst=0`` this is the pure rate line ``rate * t`` — the
        service curve of a constant-rate link.
        """
        if burst < 0 or rate < 0:
            raise CurveError("affine curve needs non-negative burst and rate")
        return Curve([0.0], [burst], [rate], validate=False)

    @staticmethod
    def rate_latency(rate: float, latency: float) -> "Curve":
        """The rate-latency service curve ``max(0, rate * (t - latency))``."""
        if rate < 0 or latency < 0:
            raise CurveError("rate-latency curve needs non-negative parameters")
        if latency == 0:
            return Curve.affine(0.0, rate)
        return Curve([0.0, latency], [0.0, 0.0], [0.0, rate], validate=False)

    @staticmethod
    def from_points(
        points: Sequence[Tuple[float, float]], final_slope: float
    ) -> "Curve":
        """Build a continuous curve through ``points`` (sorted by x).

        ``points`` are ``(x, y)`` pairs; consecutive points are joined by
        straight segments and the curve continues past the last point with
        ``final_slope``.  The first point must have ``x == 0``.
        """
        if not points:
            raise CurveError("need at least one point")
        xs = np.asarray([p[0] for p in points], dtype=float)
        ys = np.asarray([p[1] for p in points], dtype=float)
        return Curve.from_breakpoints(xs, ys, final_slope)

    @staticmethod
    def from_breakpoints(
        xs: np.ndarray, ys: np.ndarray, final_slope: float
    ) -> "Curve":
        """Vectorized :meth:`from_points` over parallel coordinate arrays.

        Interior slopes are the divided differences ``(y[i+1] - y[i]) /
        (x[i+1] - x[i])``; the final segment continues with ``final_slope``.
        """
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        if len(xs) == 0:
            raise CurveError("need at least one point")
        slopes = np.empty_like(xs)
        if len(xs) > 1:
            dx = np.diff(xs)
            if np.any(dx <= 0):
                raise CurveError("points must have strictly increasing x")
            slopes[:-1] = np.diff(ys) / dx
        slopes[-1] = float(final_slope)
        return Curve(xs, ys, slopes)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def __call__(self, t):
        """Evaluate the curve at ``t`` (scalar or array), right-continuously."""
        if isinstance(t, (int, float)):
            if t < 0:
                return 0.0
            xs, ys, slopes = self._as_lists()
            i = bisect_right(xs, t) - 1
            if i < 0:
                i = 0
            return ys[i] + slopes[i] * (t - xs[i])
        t_arr = np.asarray(t, dtype=float)
        idx = np.searchsorted(self.xs, t_arr, side="right") - 1
        # searchsorted lands in [-1, n-1]; only the lower bound needs a clamp.
        np.maximum(idx, 0, out=idx)
        vals = self.ys[idx] + self.slopes[idx] * (t_arr - self.xs[idx])
        # For t < 0 the curve is 0 by convention.
        vals = np.where(t_arr < 0, 0.0, vals)
        if t_arr.ndim == 0:
            return float(vals)
        return vals

    def value(self, t: float) -> float:
        """Scalar evaluation (alias of ``__call__`` for readability)."""
        return float(self(t))

    def left_limit(self, t: float) -> float:
        """The left limit ``lim_{s -> t^-} curve(s)`` (0 at t <= 0).

        At a breakpoint ``t == xs[i+1]`` the ``side="left"`` bisection lands
        on segment ``i``, so the value comes from the segment *before* the
        jump — exactly the left limit.
        """
        if t <= 0:
            return 0.0
        xs, ys, slopes = self._as_lists()
        i = bisect_left(xs, t) - 1
        if i < 0:
            return 0.0
        return ys[i] + slopes[i] * (t - xs[i])

    @property
    def final_slope(self) -> float:
        """Slope of the last (infinite) segment — the long-term rate."""
        return float(self.slopes[-1])

    @property
    def last_breakpoint(self) -> float:
        """x-coordinate of the last breakpoint."""
        return float(self.xs[-1])

    def breakpoints(self) -> np.ndarray:
        """The x-coordinates of all breakpoints.

        Returns the curve's own contiguous float64 array *without copying*
        (the hot kernels share these arrays freely).  Treat it as
        read-only: in-place mutation would corrupt the immutable curve and
        every cache holding it.  reprolint RL004 flags mutation of names
        bound from this call.
        """
        return self.xs

    def fingerprint(self) -> int:
        """A content hash, used for memoizing analyses keyed by envelope."""
        if self._fingerprint is None:
            self._fingerprint = hash(
                (self.xs.tobytes(), self.ys.tobytes(), self.slopes.tobytes())
            )
        return self._fingerprint

    def pseudo_inverse(self, y: float) -> float:
        """``inf { t >= 0 : curve(t) >= y }`` — the first time ``y`` is reached.

        Returns ``math.inf`` when the curve never reaches ``y``.  Because the
        curve is non-decreasing, the first segment whose span covers ``y``
        can be found by binary search on the breakpoint values.  Scalar fast
        path of :meth:`pseudo_inverse_many` (same arithmetic, no arrays).
        """
        xs, ys, slopes = self._as_lists()
        if y <= ys[0]:
            return 0.0
        n = len(xs)
        # i0 = index of the first breakpoint whose (right) value >= y; here
        # i0 >= 1 because y > ys[0].
        i0 = bisect_left(ys, y)
        # Default answer: the jump at breakpoint i0 (or inf past the end).
        out = xs[i0] if i0 < n else math.inf
        # Segment j = i0 - 1 may climb to y before breakpoint i0.
        j = i0 - 1
        slope_j = slopes[j]
        if slope_j > EPS:
            t_seg = xs[j] + (y - ys[j]) / slope_j
            seg_end = xs[j + 1] if j + 1 < n else math.inf
            if t_seg <= seg_end:
                return t_seg
        return out

    def pseudo_inverse_many(self, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`pseudo_inverse` for an array of values."""
        values = np.asarray(values, dtype=float)
        n = len(self.xs)
        # i0 = index of the first breakpoint whose (right) value >= y.
        i0 = np.searchsorted(self.ys, values, side="left")
        # Default answer: the jump at breakpoint i0 (or inf past the end).
        out = np.where(i0 < n, self.xs[np.minimum(i0, n - 1)], math.inf)
        # Segment j = i0 - 1 may climb to y before breakpoint i0.
        j = np.maximum(i0 - 1, 0)
        slope_j = self.slopes[j]
        safe_slope = np.where(slope_j > EPS, slope_j, 1.0)
        t_seg = self.xs[j] + (values - self.ys[j]) / safe_slope
        seg_end = np.append(self.xs[1:], math.inf)[j]
        use_seg = (i0 >= 1) & (slope_j > EPS) & (t_seg <= seg_end)
        out = np.where(use_seg, t_seg, out)
        out = np.where((i0 == 0) | (values <= self.ys[0]), 0.0, out)
        return out

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def _merged_xs(self, other: "Curve") -> np.ndarray:
        xs = np.union1d(self.xs, other.xs)
        return xs

    def __add__(self, other) -> "Curve":
        if isinstance(other, (int, float)):
            return Curve(self.xs, self.ys + float(other), self.slopes, validate=False)
        if not isinstance(other, Curve):
            return NotImplemented
        xs = self._merged_xs(other)
        ys = self(xs) + other(xs)
        slopes = _slopes_at(self, xs) + _slopes_at(other, xs)
        return Curve(xs, ys, slopes, validate=False).simplify()

    __radd__ = __add__

    def __mul__(self, factor) -> "Curve":
        if not isinstance(factor, (int, float)):
            return NotImplemented
        if factor < 0:
            raise CurveError("cannot scale an envelope by a negative factor")
        return Curve(self.xs, self.ys * float(factor), self.slopes * float(factor), validate=False)

    __rmul__ = __mul__

    def shift_right(self, delay: float) -> "Curve":
        """Delay the curve by ``delay``: result(t) = curve(t - delay).

        Used for constant-delay servers: the output envelope of a pure delay
        element is the input envelope (traffic shape is unchanged), but the
        *service curve* of the chain shifts.  Also used to advance envelopes
        by a known delay bound.
        """
        if delay < 0:
            raise CurveError("delay must be non-negative")
        if delay == 0:
            return self
        xs = np.concatenate([[0.0], self.xs + delay])
        ys = np.concatenate([[0.0], self.ys])
        slopes = np.concatenate([[0.0], self.slopes])
        return Curve(xs, ys, slopes, validate=False)

    def shift_left(self, advance: float) -> "Curve":
        """Advance the curve: result(t) = curve(t + advance).

        The standard output-envelope bound of a FIFO server with delay bound
        ``d`` is the input envelope advanced by ``d`` (a bit that left by
        time ``t`` arrived no later than ``t``, and no earlier than
        ``t - d``).
        """
        if advance < 0:
            raise CurveError("advance must be non-negative")
        if advance == 0:
            return self
        # New value at t is old value at t + advance.
        keep = self.xs > advance
        xs = np.concatenate([[0.0], self.xs[keep] - advance])
        first_val = self(advance)
        ys = np.concatenate([[first_val], self.ys[keep]])
        # Slope at t=0 of the new curve is the slope of the segment containing
        # `advance` in the old curve.
        i = bisect_right(self._as_lists()[0], advance) - 1
        slopes = np.concatenate([[self.slopes[i]], self.slopes[keep]])
        return Curve(xs, ys, slopes, validate=False)

    # ------------------------------------------------------------------
    # Pointwise min / max
    # ------------------------------------------------------------------

    def minimum(self, other: "Curve") -> "Curve":
        """Pointwise minimum of two curves (exact, with crossing points)."""
        return _combine(self, other, min)

    def maximum(self, other: "Curve") -> "Curve":
        """Pointwise maximum of two curves (exact, with crossing points)."""
        return _combine(self, other, max)

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------

    def simplify(self, tol: float = 1e-9) -> "Curve":
        """Merge consecutive collinear segments (no continuity jumps).

        A breakpoint is dropped when it sits exactly on its predecessor's
        line with the same slope; collinearity is transitive along a chain,
        so the pairwise vectorized test matches the sequential sweep.
        """
        if len(self.xs) <= 1:
            return self
        dx = np.diff(self.xs)
        pred_y = self.ys[:-1] + self.slopes[:-1] * dx
        scale_y = np.maximum(1.0, np.maximum(np.abs(pred_y), np.abs(self.ys[1:])))
        scale_s = np.maximum(
            1.0, np.maximum(np.abs(self.slopes[:-1]), np.abs(self.slopes[1:]))
        )
        same = (np.abs(pred_y - self.ys[1:]) <= tol * scale_y) & (
            np.abs(self.slopes[:-1] - self.slopes[1:]) <= tol * scale_s
        )
        keep = np.concatenate([[True], ~same])
        if keep.all():
            return self
        return Curve(
            self.xs[keep], self.ys[keep], self.slopes[keep], validate=False
        )

    def coarsen(self, max_segments: int, direction: str = "upper") -> "Curve":
        """Return a *conservative approximation* with at most ``max_segments``.

        Used to keep breakpoint counts bounded when envelopes accumulate
        structure across many servers.  The rounding side depends on what
        the curve models:

        * ``direction="upper"`` (arrival envelopes) — the result dominates
          the original everywhere, so admitted traffic is over-estimated and
          downstream delay bounds remain valid (only more pessimistic);
        * ``direction="lower"`` (service/availability curves) — the result
          is dominated by the original everywhere, so guaranteed service is
          under-estimated, which is again the safe side for delay bounds.

        Both sides keep an evenly-spread subset of breakpoints and replace
        each inter-breakpoint span by a constant: the original's supremum
        over the span (its left limit at the next kept breakpoint) for the
        upper side, its infimum (the right value at the span's start) for
        the lower side.  From the last kept breakpoint onwards the coarse
        curve equals the original exactly, so the long-term rate — and with
        it every stability check — is preserved.
        """
        if len(self.xs) <= max_segments:
            return self
        if direction not in ("upper", "lower"):
            raise CurveError(f"unknown coarsening direction {direction!r}")
        idx = np.unique(np.linspace(0, len(self.xs) - 1, max_segments).astype(int))
        new_xs = self.xs[idx]
        new_slopes = np.zeros(len(idx))
        new_slopes[-1] = self.slopes[idx[-1]]
        if direction == "upper":
            new_ys = np.empty(len(idx))
            new_ys[:-1] = _left_limits_at(self, self.xs[idx[1:]])
            new_ys[-1] = self.ys[idx[-1]]
            ys_arr = np.maximum.accumulate(new_ys)
        else:
            # The right value at each kept breakpoint is a lower bound for
            # the whole span to the next one (the curve is non-decreasing).
            ys_arr = self.ys[idx]
        # Merge only *exactly* collinear breakpoints (tol=0): a tolerant
        # simplify may absorb the final segment's small positive slope into
        # a flat predecessor, and the coarse curve would eventually dip
        # below (upper) or rise above (lower) the original — breaking the
        # conservativeness contract.
        return Curve(new_xs, ys_arr, new_slopes, validate=False).simplify(tol=0.0)

    # ------------------------------------------------------------------
    # Comparison helpers
    # ------------------------------------------------------------------

    def dominates(self, other: "Curve", tol: float = 1e-6) -> bool:
        """True if ``self(t) >= other(t) - tol`` for all t.

        The tolerance is scaled *symmetrically* — by the larger magnitude of
        the two curves at each checkpoint — so ``a.dominates(b)`` and
        ``b.dominates(a)`` agree on near-equal curves regardless of operand
        order (RL003: never let a float comparison depend on which side the
        rounding noise landed on).
        """
        xs = np.union1d(self.xs, other.xs)
        if self.final_slope < other.final_slope - EPS:
            return False
        # Check right values and left limits at all breakpoints.
        vals_self = self(xs)
        vals_other = other(xs)
        scale = np.maximum(1.0, np.maximum(np.abs(vals_self), np.abs(vals_other)))
        if np.any(vals_self < vals_other - tol * scale):
            return False
        ll_self = _left_limits_at(self, xs[1:])
        ll_other = _left_limits_at(other, xs[1:])
        scale_ll = np.maximum(
            1.0, np.maximum(np.abs(ll_self), np.abs(ll_other))
        )
        return not np.any(ll_self < ll_other - tol * scale_ll)

    def equals(self, other: "Curve", tol: float = 1e-9) -> bool:
        """Pointwise equality within tolerance."""
        return self.dominates(other, tol) and other.dominates(self, tol)

    def to_dict(self) -> dict:
        """A JSON-serializable description of the curve."""
        return {
            "xs": self.xs.tolist(),
            "ys": self.ys.tolist(),
            "slopes": self.slopes.tolist(),
        }

    @staticmethod
    def from_dict(data: dict) -> "Curve":
        """Rebuild a curve from :meth:`to_dict` output (validated)."""
        try:
            return Curve(data["xs"], data["ys"], data["slopes"])
        except KeyError as exc:
            raise CurveError(f"curve dict missing key {exc}") from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pieces = ", ".join(
            f"({x:.6g}: {y:.6g} @{s:.6g})"
            for x, y, s in zip(self.xs[:6], self.ys[:6], self.slopes[:6])
        )
        more = "…" if len(self.xs) > 6 else ""
        return f"Curve[{len(self.xs)} segs: {pieces}{more}]"


def _left_limits_at(curve: Curve, xs: np.ndarray) -> np.ndarray:
    """Vectorized left limits of ``curve`` at each x (0 for x <= 0)."""
    idx = np.searchsorted(curve.xs, xs, side="left") - 1
    np.maximum(idx, 0, out=idx)
    vals = curve.ys[idx] + curve.slopes[idx] * (xs - curve.xs[idx])
    return np.where(xs <= 0, 0.0, vals)


def _slopes_at(curve: Curve, xs: np.ndarray) -> np.ndarray:
    """The slope of ``curve`` on the segment starting at each x in ``xs``.

    ``xs`` must contain only points at or after 0.  For points beyond the
    last breakpoint the final slope applies.
    """
    idx = np.searchsorted(curve.xs, xs, side="right") - 1
    np.maximum(idx, 0, out=idx)
    return curve.slopes[idx]


def _combine(a: Curve, b: Curve, chooser) -> Curve:
    """Pointwise min or max of two curves, inserting crossing points."""
    base_xs = np.union1d(a.xs, b.xs)
    # Find crossings inside each interval [x_i, x_{i+1}) where both are
    # affine, plus in the final infinite segment.
    va, vb = a(base_xs), b(base_xs)
    sa, sb = _slopes_at(a, base_xs), _slopes_at(b, base_xs)
    dslope = sa - sb
    safe = np.where(np.abs(dslope) >= EPS, dslope, 1.0)
    t_cross = -(va - vb) / safe
    x_cross = base_xs + t_cross
    seg_end = np.append(base_xs[1:], math.inf)
    valid = (np.abs(dslope) >= EPS) & (t_cross > EPS) & (x_cross < seg_end - EPS)
    xs = np.unique(np.concatenate([base_xs, x_cross[valid]]))
    vals_a = a(xs)
    vals_b = b(xs)
    if chooser is min:
        ys = np.minimum(vals_a, vals_b)
        pick_a = vals_a <= vals_b
    else:
        ys = np.maximum(vals_a, vals_b)
        pick_a = vals_a >= vals_b
    slopes_a = _slopes_at(a, xs)
    slopes_b = _slopes_at(b, xs)
    # At a point where the curves are equal, the chooser must look ahead via
    # slopes: min picks the smaller slope, max the larger.
    equal = np.abs(vals_a - vals_b) <= 1e-12 * np.maximum(1.0, np.abs(vals_a))
    if chooser is min:
        slopes = np.where(pick_a, slopes_a, slopes_b)
        slopes = np.where(equal, np.minimum(slopes_a, slopes_b), slopes)
    else:
        slopes = np.where(pick_a, slopes_a, slopes_b)
        slopes = np.where(equal, np.maximum(slopes_a, slopes_b), slopes)
    return Curve(xs, ys, slopes, validate=False).simplify()


def sum_curves(curves: Iterable[Curve]) -> Curve:
    """Sum an iterable of curves (the aggregate envelope at a multiplexer).

    The merged breakpoint grid is built in one n-ary merge (a single sort
    over the concatenated breakpoints) instead of pairwise ``union1d``
    folds; each curve is then evaluated once over that grid.  Accumulation
    stays in input order so the float sums match a sequential fold exactly.
    """
    curves = list(curves)
    if not curves:
        return Curve.zero()
    if len(curves) == 1:
        xs = curves[0].xs
    else:
        xs = np.unique(np.concatenate([c.xs for c in curves]))
    ys = np.zeros_like(xs)
    slopes = np.zeros_like(xs)
    for c in curves:
        ys += c(xs)
        slopes += _slopes_at(c, xs)
    return Curve(xs, ys, slopes, validate=False).simplify()
