"""Deviation and deconvolution operations on envelope curves.

These four functions implement, exactly, the quantities that the paper's
server theorems need:

* :func:`busy_interval` — Theorem 1(1): the maximal busy interval ``B``,
  the first instant at which the service staircase has caught up with the
  arrival envelope.
* :func:`vertical_deviation` — Theorem 1(2): the worst-case backlog (buffer
  requirement) ``F``.
* :func:`horizontal_deviation` — Theorem 1(3): the worst-case delay ``chi``
  (and the FIFO output-port delay bound of refs [2, 14]).
* :func:`deconvolve` — Theorem 1(4) / Eq. (12): the output-traffic envelope
  ``sup_t [A(t + I) - S(t)]`` restricted to ``t`` in the busy interval.

All operations are exact for piecewise-linear inputs: candidate extremal
points are enumerated from the curves' breakpoints, and between candidates
the objective is affine.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.envelopes.curve import EPS, Curve, _left_limits_at, _slopes_at


def busy_interval(arrival: Curve, service: Curve, t_max: float = math.inf) -> float:
    """The maximal busy interval ``B = min { t > 0 : A(t) <= S(t) }``.

    Returns 0.0 when the server is never backlogged (``A <= S`` from the
    start), and ``math.inf`` when the arrival rate exceeds the service rate
    so the backlog never clears (the unstable case of Theorem 1).

    Parameters
    ----------
    arrival, service:
        The cumulative arrival envelope ``A`` and availability curve ``S``.
    t_max:
        Optional search cut-off; ``inf`` by default (the final affine
        segments make an exact unbounded search possible).
    """
    xs = np.union1d(arrival.xs, service.xs)
    xs = xs[xs <= t_max]
    if len(xs):
        a_vals = arrival(xs)
        diff = a_vals - service(xs)
        tol = 1e-9 * np.maximum(1.0, np.abs(a_vals))
        hits = (xs > 0) & (diff <= tol)
        if hits.any():
            # First breakpoint at which the service has caught up; locate
            # the crossing inside the preceding segment when the arrival
            # was still ahead there.
            k = int(np.argmax(hits))
            x = float(xs[k])
            if k >= 1 and float(diff[k - 1]) > float(tol[k]):
                sa = float(_slopes_at(arrival, xs[k - 1 : k])[0])
                ss = float(_slopes_at(service, xs[k - 1 : k])[0])
                dslope = sa - ss
                if dslope < -EPS:
                    t_cross = float(xs[k - 1]) - float(diff[k - 1]) / dslope
                    # The crossing may occur before the breakpoint (inside
                    # the open segment) only if both curves are continuous
                    # there; a jump in S at `x` can also close the gap.
                    if t_cross < x - EPS:
                        return float(t_cross)
            return x
    # Beyond the last breakpoint both curves are affine.
    x0 = float(xs[-1]) if len(xs) else 0.0
    a0 = float(arrival(x0))
    diff0 = a0 - float(service(x0))
    tol0 = 1e-9 * max(1.0, abs(a0))
    dslope = arrival.final_slope - service.final_slope
    if diff0 <= tol0:
        return x0 if x0 > 0 else 0.0
    if dslope >= -EPS:
        return math.inf
    return float(x0 - diff0 / dslope)


def vertical_deviation(
    arrival: Curve, service: Curve, t_max: float = math.inf
) -> float:
    """``sup_{0 < t <= t_max} [A(t) - S(t)]`` — the worst-case backlog.

    With ``t_max = inf`` the supremum over the final affine region is
    included (it is ``+inf`` when the arrival rate exceeds the service
    rate).
    """
    xs = np.union1d(arrival.xs, service.xs)
    xs = xs[xs <= t_max]
    if len(xs) == 0:
        xs = np.asarray([0.0])
    # Right values at the breakpoints, and left limits (a jump *down* in
    # A - S happens when S jumps, so the supremum may sit just before a
    # breakpoint).
    right = np.max(arrival(xs) - service(xs))
    left = np.max(_left_limits_at(arrival, xs) - _left_limits_at(service, xs))
    best = max(0.0, float(right), float(left))
    if math.isfinite(t_max):
        best = max(best, float(arrival(t_max) - service(t_max)))
        return best
    if arrival.final_slope > service.final_slope + EPS:
        return math.inf
    return best


def horizontal_deviation(
    arrival: Curve, service: Curve, t_max: float = math.inf
) -> float:
    """``sup_{0 < t <= t_max} min { d >= 0 : S(t + d) >= A(t) }``.

    This is the classical worst-case FIFO delay: the maximal horizontal
    distance from the arrival envelope to the service curve.  Returns
    ``math.inf`` when the system is unstable (``A``'s long-term rate exceeds
    ``S``'s) or when ``S`` plateaus below a value ``A`` reaches.
    """
    if math.isinf(t_max) and arrival.final_slope > service.final_slope + EPS:
        return math.inf

    # Candidate t values where the delay function d(t) = S^{-1}(A(t)) - t can
    # peak: arrival breakpoints (tail of a burst), and points where A(t)
    # crosses a service breakpoint value (d changes slope there).  Left
    # limits at service jumps and a nudge past each candidate cover suprema
    # that are approached but not attained.
    service_levels = np.concatenate(
        [service.ys, _left_limits_at(service, service.xs[1:])]
    )
    crossing_ts = arrival.pseudo_inverse_many(service_levels)
    crossing_ts = crossing_ts[np.isfinite(crossing_ts)]
    cands = np.concatenate([arrival.xs, crossing_ts])
    cands = np.concatenate([cands, cands + 1e-9 * np.maximum(1.0, cands)])
    if math.isfinite(t_max):
        cands = cands[cands <= t_max + EPS]
        cands = np.append(cands, float(t_max))
    cands = cands[cands >= 0.0]
    if len(cands) == 0:
        return 0.0

    arr_vals = arrival(cands)
    s_times = service.pseudo_inverse_many(arr_vals)
    if np.any(np.isinf(s_times)):
        return math.inf
    best = float(np.max(s_times - cands))

    # Beyond the last candidate the delay function is affine with slope
    # (rate_A / rate_S - 1) <= 0 in the stable case, so the supremum over the
    # tail is attained at the last breakpoint already considered; in the
    # bounded case t_max is included above.
    return max(best, 0.0)


def token_bucket_majorant(curve: Curve) -> Tuple[float, float]:
    """The tightest (sigma, rho) with ``curve(t) <= sigma + rho * t``.

    ``rho`` is the curve's final slope; ``sigma`` the supremum of
    ``curve(t) - rho * t``, attained at a breakpoint (or a left limit just
    before one) because the difference is piecewise linear.
    """
    rho = curve.final_slope
    xs = curve.xs
    sigma = float(np.max(curve(xs) - rho * xs))
    if len(xs) > 1:
        lefts = _left_limits_at(curve, xs[1:]) - rho * xs[1:]
        sigma = max(sigma, float(np.max(lefts)))
    return max(0.0, sigma), rho


def deconvolve(
    arrival: Curve,
    service: Curve,
    t_limit: float,
    i_max: Optional[float] = None,
    max_breakpoints: int = 512,
) -> Curve:
    """Output envelope ``O(I) = sup_{0 <= t <= t_limit} [A(t + I) - S(t)]``.

    ``t_limit`` should be the server's busy interval ``B`` (Theorem 1(4)
    restricts the supremum to the busy interval).  The result is exact: the
    supremum of finitely many affine-in-``I`` functions is evaluated at every
    ``I`` where the active function can change — the pairwise differences of
    breakpoints of ``A`` and ``S`` — and is affine in between.

    Parameters
    ----------
    i_max:
        Horizon after which the result continues with ``A``'s final slope.
        Defaults to ``A.last_breakpoint + t_limit`` which is provably
        sufficient for exactness.
    max_breakpoints:
        Safety valve for pathological inputs: if the candidate grid exceeds
        this size it is thinned (the result then interpolates between exact
        points of a non-decreasing function, and is re-majorized to stay
        conservative).
    """
    if not math.isfinite(t_limit):
        raise ValueError("deconvolution needs a finite busy interval")
    t_limit = max(0.0, t_limit)

    if i_max is None:
        i_max = arrival.last_breakpoint + t_limit + EPS

    # Candidate t values (within [0, t_limit]): breakpoints of S, and
    # breakpoints of A shifted by each candidate I — equivalently, we build
    # the candidate I grid from pairwise differences and evaluate the sup by
    # scanning t candidates per I.
    inner = service.xs[(service.xs > 0.0) & (service.xs < t_limit)]
    # The supremum can sit just *before* a service jump (where S is still at
    # its left limit); nudged candidates capture it to within the nudge.
    nudge_src = np.concatenate([service.xs, [t_limit]])
    nudge_src = nudge_src[(nudge_src > 0.0) & (nudge_src <= t_limit)]
    nudged = np.maximum(0.0, nudge_src - 1e-9 * np.maximum(1.0, nudge_src))
    t_base = np.unique(np.concatenate([[0.0, t_limit], inner, nudged]))

    # Candidate I grid: pairwise differences ax - t, plus the arrival
    # breakpoints themselves, clipped to (0, i_max).
    diffs = (arrival.xs[:, None] - t_base[None, :]).ravel()
    diffs = diffs[(diffs > 0.0) & (diffs < i_max)]
    ax_inner = arrival.xs[(arrival.xs > 0.0) & (arrival.xs < i_max)]
    i_arr = np.unique(np.concatenate([[0.0, float(i_max)], diffs, ax_inner]))
    thinned = len(i_arr) > max_breakpoints
    if thinned:
        # Thin the grid but always keep the endpoints.
        step = len(i_arr) / float(max_breakpoints)
        idx = sorted({0, len(i_arr) - 1} | {int(k * step) for k in range(max_breakpoints)})
        i_arr = i_arr[np.asarray(idx)]

    # Branch 1 (service-relative candidates): sup over t in t_base of
    # A(t + I) - S(t), vectorized as a |I| x |t| matrix.  The evaluation of
    # A is inlined (all candidates are >= 0, so ``__call__``'s negative-t
    # clamp is a no-op) and chunked over I rows so the temporaries stay
    # cache-resident: the row maximum is order-independent and every
    # elementwise operation is unchanged, so the result is bit-identical
    # to the unchunked form.
    s_base = service(t_base)
    n_t = len(t_base)
    values = np.empty(len(i_arr))
    axs, ays, aslopes = arrival.xs, arrival.ys, arrival.slopes
    chunk = max(1, 262144 // max(1, n_t))
    for lo in range(0, len(i_arr), chunk):
        pts = t_base[None, :] + i_arr[lo:lo + chunk, None]
        idx = np.searchsorted(axs, pts, side="right") - 1
        np.maximum(idx, 0, out=idx)
        a_matrix = ays[idx] + aslopes[idx] * (pts - axs[idx])
        values[lo:lo + chunk] = np.max(a_matrix - s_base[None, :], axis=1)

    # Branch 2 (arrival-relative candidates): t = ax - I for each arrival
    # breakpoint ax; there A jumps to its right value ys[k].
    if len(arrival.xs):
        t_mat = arrival.xs[None, :] - i_arr[:, None]
        valid = (t_mat >= 0.0) & (t_mat <= t_limit)
        s_vals = service(np.where(valid, t_mat, 0.0).ravel()).reshape(t_mat.shape)
        branch2 = np.where(valid, arrival.ys[None, :] - s_vals, -math.inf)
        values = np.maximum(values, np.max(branch2, axis=1))

    # O is non-decreasing in I; enforce against numerical noise.
    values = np.maximum.accumulate(values)

    if thinned:
        # Linear interpolation between thinned samples could undercut the
        # true (non-decreasing) function; a right-continuous staircase
        # through the *next* sample dominates it everywhere.
        ys = np.concatenate([values[1:], values[-1:]])
        slopes = np.concatenate(
            [np.zeros(len(i_arr) - 1), [arrival.final_slope]]
        )
        return Curve(i_arr, ys, slopes, validate=False).simplify()

    out = Curve.from_breakpoints(i_arr, values, final_slope=arrival.final_slope)
    return out.simplify()
